// Package trace is the bring-up observability facility: a bounded ring of
// timestamped events from the channel, the NVMC and the driver — the
// software equivalent of the logic analyzer hanging off the PoC board. It
// exists to answer "what was on the bus around the failure?" questions the
// way the authors debugged the real device.
package trace

import (
	"fmt"
	"io"

	"nvdimmc/internal/sim"
)

// Kind classifies events.
type Kind int

// Event kinds.
const (
	KindCommand   Kind = iota // DDR4 command on the CA bus
	KindRefresh               // REF specifically (also counted as Command)
	KindWindow                // extra-tRFC window opened
	KindNVMCData              // NVMC moved data in a window
	KindCPCommand             // driver posted a CP command
	KindCPAck                 // device posted an ack
	KindFault                 // driver fault path entered
	KindEviction              // driver evicted a slot
	KindCollision             // bus collision (fatal on real hardware)
	KindOther
)

var kindNames = map[Kind]string{
	KindCommand:   "cmd",
	KindRefresh:   "REF",
	KindWindow:    "window",
	KindNVMCData:  "nvmc-data",
	KindCPCommand: "cp-cmd",
	KindCPAck:     "cp-ack",
	KindFault:     "fault",
	KindEviction:  "evict",
	KindCollision: "COLLISION",
	KindOther:     "other",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one trace record.
type Event struct {
	At     sim.Time
	Kind   Kind
	Detail string
}

func (e Event) String() string {
	return fmt.Sprintf("%-12v %-10s %s", e.At, e.Kind, e.Detail)
}

// Log is a bounded ring of events with per-kind counters. The zero value is
// disabled; create with New.
type Log struct {
	ring     []Event
	next     int
	wrapped  bool
	counts   map[Kind]uint64
	total    uint64
	disabled bool
}

// New returns a log keeping the most recent capacity events.
func New(capacity int) *Log {
	if capacity < 1 {
		capacity = 1
	}
	return &Log{ring: make([]Event, capacity), counts: make(map[Kind]uint64)}
}

// SetEnabled toggles recording (counters freeze too when disabled).
func (l *Log) SetEnabled(v bool) { l.disabled = !v }

// Add records an event.
func (l *Log) Add(at sim.Time, kind Kind, detail string) {
	if l == nil || l.disabled {
		return
	}
	l.counts[kind]++
	l.total++
	l.ring[l.next] = Event{At: at, Kind: kind, Detail: detail}
	l.next++
	if l.next == len(l.ring) {
		l.next = 0
		l.wrapped = true
	}
}

// Addf records a formatted event.
func (l *Log) Addf(at sim.Time, kind Kind, format string, args ...interface{}) {
	if l == nil || l.disabled {
		return
	}
	l.Add(at, kind, fmt.Sprintf(format, args...))
}

// Total reports events recorded since creation (including overwritten ones).
func (l *Log) Total() uint64 { return l.total }

// Count reports events of one kind.
func (l *Log) Count(k Kind) uint64 { return l.counts[k] }

// Events returns the retained events in chronological order.
func (l *Log) Events() []Event {
	if !l.wrapped {
		out := make([]Event, l.next)
		copy(out, l.ring[:l.next])
		return out
	}
	out := make([]Event, 0, len(l.ring))
	out = append(out, l.ring[l.next:]...)
	out = append(out, l.ring[:l.next]...)
	return out
}

// Dump writes the last n retained events (all if n <= 0) to w, followed by
// the per-kind totals.
func (l *Log) Dump(w io.Writer, n int) {
	evs := l.Events()
	if n > 0 && n < len(evs) {
		evs = evs[len(evs)-n:]
	}
	for _, e := range evs {
		fmt.Fprintln(w, e)
	}
	fmt.Fprintf(w, "-- %d events total:", l.total)
	for k := KindCommand; k <= KindOther; k++ {
		if c := l.counts[k]; c > 0 {
			fmt.Fprintf(w, " %s=%d", k, c)
		}
	}
	fmt.Fprintln(w)
}
