// Package trace is the bring-up observability facility: structured,
// timestamped events from the channel, the iMC, the NVMC, the refresh
// detector and the driver — the software equivalent of the logic analyzer
// hanging off the PoC board. Producers publish through a Recorder, which
// fans every event out to pluggable Sinks: the bounded ring Log below (the
// "what was on the bus around the failure?" view) and, in a full system,
// the internal/conform protocol auditor. Events carry typed payloads and
// format themselves lazily, so an always-on auditing sink costs no
// Sprintf per event.
package trace

import (
	"fmt"
	"io"

	"nvdimmc/internal/cp"
	"nvdimmc/internal/ddr4"
	"nvdimmc/internal/sim"
)

// Kind classifies events.
type Kind int

// Event kinds.
const (
	KindCommand     Kind = iota // DDR4 command on the CA bus
	KindRefresh                 // REF specifically (also counted as Command)
	KindRefreshHold             // iMC holds the data bus for one tRFC to refresh
	KindRefDetect               // refresh detector resolved a REF off the CA pins
	KindWindow                  // extra-tRFC window opened
	KindNVMCData                // NVMC moved data in a window
	KindHostData                // host burst occupied the data bus
	KindCPCommand               // NVMC accepted a CP command
	KindCPAck                   // device posted an ack
	KindFault                   // driver fault path entered
	KindEviction                // driver evicted a slot
	KindCollision               // bus collision (fatal on real hardware)
	KindOther
)

var kindNames = map[Kind]string{
	KindCommand:     "cmd",
	KindRefresh:     "REF",
	KindRefreshHold: "ref-hold",
	KindRefDetect:   "ref-det",
	KindWindow:      "window",
	KindNVMCData:    "nvmc-data",
	KindHostData:    "host-data",
	KindCPCommand:   "cp-cmd",
	KindCPAck:       "cp-ack",
	KindFault:       "fault",
	KindEviction:    "evict",
	KindCollision:   "COLLISION",
	KindOther:       "other",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Bus masters, mirroring bus.Master (which cannot be imported here without
// a cycle: the bus publishes trace events).
const (
	MasterHost = 0 // the host iMC
	MasterNVMC = 1 // the module's FPGA controller
)

func masterName(m int) string {
	if m == MasterNVMC {
		return "NVMC"
	}
	return "iMC"
}

// Event is one trace record. At and Kind are always set; the payload
// fields are per-kind:
//
//	KindCommand/KindRefresh: Master, Cmd
//	KindRefreshHold:         End (bus held [At, End))
//	KindRefDetect:           RefAt (bus time of the detected REF)
//	KindWindow:              End (window is [At, End)), RefAt
//	KindNVMCData:            Read, Addr, Bytes
//	KindHostData:            Read, Addr, Bytes, End (bus held [At, End))
//	KindCPCommand:           Slot, Word (primary), Word2 (secondary)
//	KindCPAck:               Slot, Word (ack word), Word2 (opcode),
//	                         Windows, Dropped (fault ate the ack write)
//	KindFault/KindEviction/KindCollision/KindOther: Detail
type Event struct {
	At      sim.Time
	Kind    Kind
	Master  int
	Cmd     ddr4.Command
	Read    bool
	Addr    int64
	Bytes   int
	End     sim.Time
	RefAt   sim.Time
	Slot    int
	Word    uint64
	Word2   uint64
	Windows int
	Dropped bool
	Detail  string
}

// Describe renders the payload (everything after the timestamp and kind).
// Free-form events (Add/Addf) carry their text in Detail; structured events
// render from their typed fields.
func (e Event) Describe() string {
	if e.Detail != "" {
		return e.Detail
	}
	switch e.Kind {
	case KindCommand, KindRefresh:
		return fmt.Sprintf("%s: %v", masterName(e.Master), e.Cmd)
	case KindRefreshHold:
		return fmt.Sprintf("bus held until %v", e.End)
	case KindRefDetect:
		return fmt.Sprintf("REF@%v detected", e.RefAt)
	case KindWindow:
		return fmt.Sprintf("open until %v (ref %v)", e.End, e.RefAt)
	case KindNVMCData, KindHostData:
		dir := "write"
		if e.Read {
			dir = "read"
		}
		if e.Kind == KindHostData {
			return fmt.Sprintf("%s %dB @%#x until %v", dir, e.Bytes, e.Addr, e.End)
		}
		return fmt.Sprintf("%s %dB @%#x", dir, e.Bytes, e.Addr)
	case KindCPCommand:
		return fmt.Sprintf("slot %d: %v", e.Slot, cp.Decode(e.Word, e.Word2))
	case KindCPAck:
		ack := cp.DecodeAck(e.Word)
		drop := ""
		if e.Dropped {
			drop = " DROPPED"
		}
		return fmt.Sprintf("slot %d: %v %v (%d windows)%s",
			e.Slot, cp.Opcode(e.Word2), ack.Status, e.Windows, drop)
	default:
		return e.Detail
	}
}

func (e Event) String() string {
	return fmt.Sprintf("%-12v %-10s %s", e.At, e.Kind, e.Describe())
}

// Sink consumes every published event. Implementations must not retain e's
// address; the value is theirs to copy.
type Sink interface {
	Record(e Event)
}

// Recorder fans events out to attached sinks. The zero value and nil are
// both valid (inactive) recorders, so producers can publish uncondition-
// ally; guard event construction with Active to skip the work entirely
// when nobody listens.
type Recorder struct {
	sinks []Sink
}

// Attach subscribes a sink to all future events.
func (r *Recorder) Attach(s Sink) {
	if s != nil {
		r.sinks = append(r.sinks, s)
	}
}

// Active reports whether any sink is attached (nil-safe).
func (r *Recorder) Active() bool { return r != nil && len(r.sinks) > 0 }

// Sinks reports how many sinks are attached (nil-safe). Idle-warp
// eligibility checks use it to detect observers that would miss warped
// events (only sinks the warp explicitly replays into may be attached).
func (r *Recorder) Sinks() int {
	if r == nil {
		return 0
	}
	return len(r.sinks)
}

// Record publishes one event to every sink (nil-safe).
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	for _, s := range r.sinks {
		s.Record(e)
	}
}

// Log is a bounded ring of events with per-kind counters, attachable to a
// Recorder as a Sink. The zero value is disabled; create with New.
type Log struct {
	ring     []Event
	next     int
	wrapped  bool
	counts   map[Kind]uint64
	total    uint64
	disabled bool
}

// New returns a log keeping the most recent capacity events.
func New(capacity int) *Log {
	if capacity < 1 {
		capacity = 1
	}
	return &Log{ring: make([]Event, capacity), counts: make(map[Kind]uint64)}
}

// SetEnabled toggles recording (counters freeze too when disabled).
func (l *Log) SetEnabled(v bool) { l.disabled = !v }

// Record implements Sink.
func (l *Log) Record(e Event) {
	if l == nil || l.disabled {
		return
	}
	l.counts[e.Kind]++
	l.total++
	l.ring[l.next] = e
	l.next++
	if l.next == len(l.ring) {
		l.next = 0
		l.wrapped = true
	}
}

// Add records a free-form event.
func (l *Log) Add(at sim.Time, kind Kind, detail string) {
	if l == nil || l.disabled {
		return
	}
	l.Record(Event{At: at, Kind: kind, Detail: detail})
}

// Addf records a formatted free-form event.
func (l *Log) Addf(at sim.Time, kind Kind, format string, args ...interface{}) {
	if l == nil || l.disabled {
		return
	}
	l.Add(at, kind, fmt.Sprintf(format, args...))
}

// Total reports events recorded since creation (including overwritten ones).
func (l *Log) Total() uint64 { return l.total }

// Count reports events of one kind.
func (l *Log) Count(k Kind) uint64 { return l.counts[k] }

// Events returns the retained events in chronological order.
func (l *Log) Events() []Event {
	if !l.wrapped {
		out := make([]Event, l.next)
		copy(out, l.ring[:l.next])
		return out
	}
	out := make([]Event, 0, len(l.ring))
	out = append(out, l.ring[l.next:]...)
	out = append(out, l.ring[:l.next]...)
	return out
}

// Dump writes the last n retained events (all if n <= 0) to w, followed by
// the per-kind totals.
func (l *Log) Dump(w io.Writer, n int) {
	evs := l.Events()
	if n > 0 && n < len(evs) {
		evs = evs[len(evs)-n:]
	}
	for _, e := range evs {
		fmt.Fprintln(w, e)
	}
	fmt.Fprintf(w, "-- %d events total:", l.total)
	for k := KindCommand; k <= KindOther; k++ {
		if c := l.counts[k]; c > 0 {
			fmt.Fprintf(w, " %s=%d", k, c)
		}
	}
	fmt.Fprintln(w)
}
