package trace

import (
	"strings"
	"testing"

	"nvdimmc/internal/ddr4"
	"nvdimmc/internal/sim"
)

func TestRingOrderAndWrap(t *testing.T) {
	l := New(3)
	for i := 0; i < 5; i++ {
		l.Add(sim.Time(i), KindCommand, string(rune('a'+i)))
	}
	evs := l.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d, want 3", len(evs))
	}
	if evs[0].Detail != "c" || evs[2].Detail != "e" {
		t.Fatalf("wrong window: %v", evs)
	}
	if l.Total() != 5 {
		t.Fatalf("total = %d", l.Total())
	}
}

func TestCounts(t *testing.T) {
	l := New(8)
	l.Add(0, KindRefresh, "r")
	l.Add(0, KindRefresh, "r")
	l.Add(0, KindCollision, "boom")
	if l.Count(KindRefresh) != 2 || l.Count(KindCollision) != 1 {
		t.Fatal("counters wrong")
	}
}

func TestDisabled(t *testing.T) {
	l := New(4)
	l.SetEnabled(false)
	l.Add(0, KindCommand, "x")
	if l.Total() != 0 {
		t.Fatal("disabled log recorded")
	}
	l.SetEnabled(true)
	l.Add(0, KindCommand, "x")
	if l.Total() != 1 {
		t.Fatal("re-enabled log did not record")
	}
}

func TestNilSafe(t *testing.T) {
	var l *Log
	l.Add(0, KindCommand, "x") // must not panic
	l.Addf(0, KindCommand, "%d", 1)
}

func TestDump(t *testing.T) {
	l := New(8)
	l.Addf(sim.Time(7800*sim.Nanosecond), KindRefresh, "iMC-issued-refresh")
	l.Add(sim.Time(8200*sim.Nanosecond), KindWindow, "open")
	var sb strings.Builder
	l.Dump(&sb, 0)
	out := sb.String()
	for _, want := range []string{"iMC-issued-refresh", "window", "2 events total"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
	// Last-1 truncation.
	sb.Reset()
	l.Dump(&sb, 1)
	if strings.Contains(sb.String(), "iMC-issued-refresh") {
		t.Fatal("truncated dump kept old events")
	}
}

type captureSink struct{ evs []Event }

func (c *captureSink) Record(e Event) { c.evs = append(c.evs, e) }

func TestRecorderFanOut(t *testing.T) {
	var r Recorder
	if r.Active() {
		t.Fatal("empty recorder active")
	}
	var nilR *Recorder
	if nilR.Active() {
		t.Fatal("nil recorder active")
	}
	nilR.Record(Event{}) // must not panic
	r.Attach(nil)        // ignored
	if r.Active() {
		t.Fatal("nil sink counted as active")
	}
	a, b := &captureSink{}, &captureSink{}
	l := New(2)
	r.Attach(a)
	r.Attach(b)
	r.Attach(l)
	if !r.Active() {
		t.Fatal("recorder with sinks inactive")
	}
	r.Record(Event{At: 1, Kind: KindRefresh})
	r.Record(Event{At: 2, Kind: KindWindow})
	if len(a.evs) != 2 || len(b.evs) != 2 || l.Total() != 2 {
		t.Fatalf("fan-out: %d/%d/%d, want 2/2/2", len(a.evs), len(b.evs), l.Total())
	}
	if a.evs[1].Kind != KindWindow || b.evs[0].At != 1 {
		t.Fatal("fan-out payload mangled")
	}
}

func TestDescribe(t *testing.T) {
	us := sim.Time(1000 * sim.Nanosecond)
	for _, tc := range []struct {
		e    Event
		want []string
	}{
		{Event{Kind: KindWindow, Detail: "free-form wins"}, []string{"free-form wins"}},
		{Event{Kind: KindCommand, Master: MasterHost, Cmd: ddr4.Command{Kind: ddr4.CmdPrechargeAll}},
			[]string{"iMC:", "PREA"}},
		{Event{Kind: KindRefresh, Master: MasterHost, Cmd: ddr4.Command{Kind: ddr4.CmdRefresh}},
			[]string{"iMC:", "REF"}},
		{Event{Kind: KindCommand, Master: MasterNVMC, Cmd: ddr4.Command{Kind: ddr4.CmdActivate}},
			[]string{"NVMC:", "ACT"}},
		{Event{Kind: KindRefreshHold, End: us}, []string{"bus held until 1.000us"}},
		{Event{Kind: KindRefDetect, RefAt: us}, []string{"REF@1.000us detected"}},
		{Event{Kind: KindWindow, End: us, RefAt: us}, []string{"open until 1.000us", "(ref 1.000us)"}},
		{Event{Kind: KindNVMCData, Read: true, Addr: 0x40, Bytes: 4096}, []string{"read 4096B @0x40"}},
		{Event{Kind: KindHostData, Addr: 0x80, Bytes: 64, End: us}, []string{"write 64B @0x80 until 1.000us"}},
		{Event{Kind: KindCPCommand, Slot: 2, Word: 1}, []string{"slot 2:"}},
		{Event{Kind: KindCPAck, Slot: 3, Word: 1, Windows: 2, Dropped: true},
			[]string{"slot 3:", "(2 windows)", "DROPPED"}},
	} {
		got := tc.e.Describe()
		for _, w := range tc.want {
			if !strings.Contains(got, w) {
				t.Errorf("%v Describe() = %q, missing %q", tc.e.Kind, got, w)
			}
		}
	}
	// String prepends timestamp and kind.
	s := Event{At: us, Kind: KindRefreshHold, End: us}.String()
	if !strings.Contains(s, "1.000us") || !strings.Contains(s, "ref-hold") {
		t.Errorf("String() = %q", s)
	}
}
