package trace

import (
	"strings"
	"testing"

	"nvdimmc/internal/sim"
)

func TestRingOrderAndWrap(t *testing.T) {
	l := New(3)
	for i := 0; i < 5; i++ {
		l.Add(sim.Time(i), KindCommand, string(rune('a'+i)))
	}
	evs := l.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d, want 3", len(evs))
	}
	if evs[0].Detail != "c" || evs[2].Detail != "e" {
		t.Fatalf("wrong window: %v", evs)
	}
	if l.Total() != 5 {
		t.Fatalf("total = %d", l.Total())
	}
}

func TestCounts(t *testing.T) {
	l := New(8)
	l.Add(0, KindRefresh, "r")
	l.Add(0, KindRefresh, "r")
	l.Add(0, KindCollision, "boom")
	if l.Count(KindRefresh) != 2 || l.Count(KindCollision) != 1 {
		t.Fatal("counters wrong")
	}
}

func TestDisabled(t *testing.T) {
	l := New(4)
	l.SetEnabled(false)
	l.Add(0, KindCommand, "x")
	if l.Total() != 0 {
		t.Fatal("disabled log recorded")
	}
	l.SetEnabled(true)
	l.Add(0, KindCommand, "x")
	if l.Total() != 1 {
		t.Fatal("re-enabled log did not record")
	}
}

func TestNilSafe(t *testing.T) {
	var l *Log
	l.Add(0, KindCommand, "x") // must not panic
	l.Addf(0, KindCommand, "%d", 1)
}

func TestDump(t *testing.T) {
	l := New(8)
	l.Addf(sim.Time(7800*sim.Nanosecond), KindRefresh, "iMC-issued-refresh")
	l.Add(sim.Time(8200*sim.Nanosecond), KindWindow, "open")
	var sb strings.Builder
	l.Dump(&sb, 0)
	out := sb.String()
	for _, want := range []string{"iMC-issued-refresh", "window", "2 events total"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
	// Last-1 truncation.
	sb.Reset()
	l.Dump(&sb, 1)
	if strings.Contains(sb.String(), "iMC-issued-refresh") {
		t.Fatal("truncated dump kept old events")
	}
}
