package core

import (
	"testing"

	"nvdimmc/internal/sim"
	"nvdimmc/internal/workload/fio"
)

// prefillCache makes the first `pages` device pages resident (NVDC-Cached
// precondition).
func prefillCache(t *testing.T, s *System, pages int) {
	t.Helper()
	tgt := s.NewFioTarget()
	_, err := fio.Run(tgt, fio.Job{
		Pattern: fio.SeqWrite, BlockSize: PageSize, NumJobs: 1,
		FileSize: int64(pages) * PageSize, OpsPerThread: pages,
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFig8CachedAnchor(t *testing.T) {
	// NVDC-Cached 4 KB randread @1 thread: paper 1835 MB/s (70% of the
	// 2606 MB/s baseline).
	s := mustSystem(t, DefaultConfig())
	pages := s.Layout.NumSlots * 9 / 10
	prefillCache(t, s, pages)
	tgt := s.NewFioTarget()
	tgt.SetWalkFootprint(15 << 30) // the host maps the full 15 GB slot space
	res, err := fio.Run(tgt, fio.Job{
		Pattern: fio.RandRead, BlockSize: PageSize, NumJobs: 1,
		FileSize: int64(pages) * PageSize, OpsPerThread: 1500, WarmupOps: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if misses := s.Driver.Stats().Misses - uint64(pages); misses > 5 {
		t.Fatalf("cached run missed %d times", misses)
	}
	got := res.BandwidthMBps()
	if got < 1400 || got > 2300 {
		t.Fatalf("NVDC-Cached 4K randread = %.0f MB/s, want ~1835 (+/-25%%)", got)
	}
	if err := s.CheckHealth(); err != nil {
		t.Fatal(err)
	}
}

// prefillFTL writes every logical page directly into the FTL (zero data —
// the NAND model deduplicates it) so uncached reads hit real media instead
// of the unmapped-page shortcut.
func prefillFTL(t *testing.T, s *System) {
	t.Helper()
	zero := make([]byte, PageSize)
	n := s.FTL.LogicalPages()
	pending := 0
	for p := int64(0); p < n; p++ {
		pending++
		s.FTL.WritePage(p, zero, func(err error) {
			if err != nil {
				t.Errorf("prefill: %v", err)
			}
			pending--
		})
		if pending >= 512 {
			if err := s.RunUntil(func() bool { return pending < 64 }, 10*sim.Second); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.RunUntil(func() bool { return pending == 0 }, 10*sim.Second); err != nil {
		t.Fatal(err)
	}
}

func TestFig8UncachedAnchor(t *testing.T) {
	// NVDC-Uncached 4 KB randread @1 thread: paper 57.3 MB/s (69.8 us/op).
	// A larger NAND keeps the scaled footprint:cache ratio high enough that
	// nearly every access misses, as on the 120 GB / 16 GB testbed.
	cfg := DefaultConfig()
	cfg.NAND.BlocksPerDie = 512 // 512 MB raw vs 16 MB cache
	s := mustSystem(t, cfg)
	prefillFTL(t, s)
	tgt := s.NewFioTarget()
	tgt.SetWalkFootprint(120 << 30)
	slots := s.Layout.NumSlots
	res, err := fio.Run(tgt, fio.Job{
		Pattern: fio.RandRead, BlockSize: PageSize, NumJobs: 1,
		FileSize: tgt.Capacity(), OpsPerThread: 300, WarmupOps: slots + 50,
		Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := res.BandwidthMBps()
	if got < 40 || got > 80 {
		t.Fatalf("NVDC-Uncached 4K randread = %.0f MB/s, want ~57 (+/-30%%)", got)
	}
	if err := s.CheckHealth(); err != nil {
		t.Fatal(err)
	}
}

func TestCachedSaturationBelowBaseline(t *testing.T) {
	// Fig. 9 shape: NVDC-Cached saturates around half the baseline's
	// plateau because of the driver's serialized section.
	var plateau float64
	for _, jobs := range []int{8} {
		s := mustSystem(t, DefaultConfig())
		pages := s.Layout.NumSlots * 9 / 10
		prefillCache(t, s, pages)
		tgt := s.NewFioTarget()
		tgt.SetWalkFootprint(15 << 30)
		res, err := fio.Run(tgt, fio.Job{
			Pattern: fio.RandRead, BlockSize: PageSize, NumJobs: jobs,
			FileSize: int64(pages) * PageSize, OpsPerThread: 400, WarmupOps: 50,
		})
		if err != nil {
			t.Fatal(err)
		}
		plateau = res.BandwidthMBps()
	}
	// Paper: 4341 MB/s at 8 threads.
	if plateau < 3300 || plateau > 5600 {
		t.Fatalf("NVDC-Cached 8-thread plateau = %.0f MB/s, want ~4341 (+/-25%%)", plateau)
	}
}

func TestSmallAccessAdvantage(t *testing.T) {
	// Fig. 10: at 128 B, NVDC-Cached beats the baseline (paper: 1.15x)
	// because the smaller mapped footprint makes page walks cheaper.
	s := mustSystem(t, DefaultConfig())
	pages := s.Layout.NumSlots * 9 / 10
	prefillCache(t, s, pages)
	tgt := s.NewFioTarget()
	tgt.SetWalkFootprint(15 << 30)
	res, err := fio.Run(tgt, fio.Job{
		Pattern: fio.RandRead, BlockSize: 128, NumJobs: 1,
		FileSize: int64(pages) * PageSize, OpsPerThread: 2000, WarmupOps: 100,
		Align: PageSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	nvdcKIOPS := res.KIOPS()
	// Paper: 2147 KIOPS NVDC vs ~1867 baseline.
	if nvdcKIOPS < 1700 || nvdcKIOPS > 2700 {
		t.Fatalf("NVDC 128B = %.0f KIOPS, want ~2147 (+/-20%%)", nvdcKIOPS)
	}
}
