package core

import (
	"bytes"
	"testing"

	"nvdimmc/internal/nvdc"
	"nvdimmc/internal/sim"
	"nvdimmc/internal/trace"
)

// smallConfig returns a fast system for tests: 1 MB cache, 8 MB NAND.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.CacheBytes = 1 << 20
	cfg.NAND.BlocksPerDie = 32
	cfg.NAND.PagesPerBlock = 16
	cfg.NAND.ProgramLatency = 20 * sim.Microsecond
	cfg.NAND.EraseLatency = 100 * sim.Microsecond
	return cfg
}

func mustSystem(t *testing.T, cfg Config) *System {
	t.Helper()
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func pattern(tag byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = tag ^ byte(i*31)
	}
	return b
}

// storeSync stores and waits for completion.
func storeSync(t *testing.T, s *System, off int64, data []byte) {
	t.Helper()
	done := false
	s.Store(off, data, func() { done = true })
	if err := s.RunUntil(func() bool { return done }, 100*sim.Millisecond); err != nil {
		t.Fatalf("store at %d: %v", off, err)
	}
}

func loadSync(t *testing.T, s *System, off int64, n int) []byte {
	t.Helper()
	buf := make([]byte, n)
	done := false
	s.Load(off, buf, func() { done = true })
	if err := s.RunUntil(func() bool { return done }, 100*sim.Millisecond); err != nil {
		t.Fatalf("load at %d: %v", off, err)
	}
	return buf
}

func TestReadYourWritesThroughFullStack(t *testing.T) {
	s := mustSystem(t, smallConfig())
	msg := pattern(0x5A, PageSize)
	storeSync(t, s, 7*PageSize, msg)
	got := loadSync(t, s, 7*PageSize, PageSize)
	if !bytes.Equal(got, msg) {
		t.Fatal("read-your-writes violated")
	}
	if err := s.CheckHealth(); err != nil {
		t.Fatal(err)
	}
}

func TestUnwrittenReadsZero(t *testing.T) {
	s := mustSystem(t, smallConfig())
	got := loadSync(t, s, 42*PageSize, 512)
	for _, b := range got {
		if b != 0 {
			t.Fatal("unwritten page reads non-zero")
		}
	}
}

func TestEvictionWritebackAndRefill(t *testing.T) {
	// Write more pages than the cache has slots; every page must read back
	// correctly after its slot was evicted and refilled from Z-NAND.
	s := mustSystem(t, smallConfig())
	slots := s.Layout.NumSlots
	pages := slots + slots/2
	if int64(pages) > s.Driver.CapacityPages() {
		t.Fatalf("test needs %d pages, device has %d", pages, s.Driver.CapacityPages())
	}
	for p := 0; p < pages; p++ {
		storeSync(t, s, int64(p)*PageSize, pattern(byte(p), 256))
	}
	st := s.Driver.Stats()
	if st.Evictions == 0 || st.Writebacks == 0 {
		t.Fatalf("no evictions/writebacks despite overflow: %+v", st)
	}
	for p := 0; p < pages; p++ {
		got := loadSync(t, s, int64(p)*PageSize, 256)
		if !bytes.Equal(got, pattern(byte(p), 256)) {
			t.Fatalf("page %d corrupted across eviction", p)
		}
	}
	if err := s.CheckHealth(); err != nil {
		t.Fatal(err)
	}
}

func TestNoCollisionsUnderConcurrentTraffic(t *testing.T) {
	// Host traffic + NVMC window traffic for a long stretch: the §III-B
	// guarantee is zero collisions and zero DRAM violations.
	s := mustSystem(t, smallConfig())
	slots := s.Layout.NumSlots
	rng := sim.NewRand(3)
	inFlight := 0
	for i := 0; i < 200; i++ {
		off := rng.Int63n(int64(slots*2)) * PageSize
		inFlight++
		s.Store(off, pattern(byte(i), 128), func() { inFlight-- })
		// Interleave host reads of cached pages (bus traffic outside
		// windows) without waiting for the store.
		if i%3 == 0 {
			s.Load(off, make([]byte, 64), nil)
		}
		if i%10 == 9 {
			if err := s.RunUntil(func() bool { return inFlight == 0 }, sim.Second); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.RunUntil(func() bool { return inFlight == 0 }, sim.Second); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckHealth(); err != nil {
		t.Fatal(err)
	}
	if s.NVMC.Stats().WindowsSeen == 0 {
		t.Fatal("NVMC never saw a window")
	}
}

func TestMechanismDisabledCollides(t *testing.T) {
	// Ablation: with the refresh detector disabled the NVMC free-runs and
	// its accesses are flagged as collisions — the §III-B failure mode.
	cfg := smallConfig()
	cfg.MechanismEnabled = false
	s := mustSystem(t, cfg)
	// With the detector off the NVMC never gets windows, so drive a raw
	// out-of-window access the way a mechanism-less design would.
	if err := s.Channel.NVMCAccess(s.Layout.SlotAddr(0), make([]byte, PageSize), true); err != nil {
		t.Fatal(err)
	}
	if s.Channel.CollisionCount() == 0 {
		t.Fatal("mechanism-off NVMC access not flagged as collision")
	}
}

func TestUncachedLatencyMatchesWindowBudget(t *testing.T) {
	// §VII-B2 calibration: a miss on a full cache (writeback + cachefill)
	// costs several refresh windows — the PoC measured 8.9x tREFI (69.8 us).
	// Accept the 6-11 window band: above the 6-window theoretical minimum,
	// in the neighborhood of the PoC's measured lag.
	s := mustSystem(t, smallConfig())
	slots := s.Layout.NumSlots
	// Fill every slot.
	for p := 0; p < slots; p++ {
		storeSync(t, s, int64(p)*PageSize, pattern(byte(p), 64))
	}
	if s.Driver.Stats().FreeSlots != 0 {
		t.Fatalf("cache not full: %d free", s.Driver.Stats().FreeSlots)
	}
	// Measure a miss.
	start := s.K.Now()
	_ = loadSync(t, s, int64(slots+5)*PageSize, 64)
	lat := s.K.Now().Sub(start)
	trefi := s.Config.TREFI
	windows := float64(lat) / float64(trefi)
	if windows < 6 || windows > 11 {
		t.Fatalf("uncached miss = %v (%.1f windows), want 6-11 windows", lat, windows)
	}
}

func TestCachedLatencyFast(t *testing.T) {
	s := mustSystem(t, smallConfig())
	storeSync(t, s, 0, pattern(1, PageSize))
	start := s.K.Now()
	_ = loadSync(t, s, 0, PageSize)
	lat := s.K.Now().Sub(start)
	// A cached 4 KB load is bus transfer + maybe one refresh: microseconds.
	if lat > 3*sim.Microsecond {
		t.Fatalf("cached 4KB load = %v, want < 3us", lat)
	}
}

func TestFaultCoalescing(t *testing.T) {
	s := mustSystem(t, smallConfig())
	done := 0
	for i := 0; i < 4; i++ {
		s.Driver.Fault(99, false, func(int) { done++ })
	}
	if err := s.RunUntil(func() bool { return done == 4 }, 10*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	st := s.Driver.Stats()
	if st.Misses != 1 || st.CoalescedFaults != 3 {
		t.Fatalf("misses=%d coalesced=%d, want 1/3", st.Misses, st.CoalescedFaults)
	}
}

func TestPowerFailPersistsDirtyData(t *testing.T) {
	cfg := smallConfig()
	s := mustSystem(t, cfg)
	// Dirty several pages; do NOT wait for any writeback.
	msgs := map[int64][]byte{}
	for p := int64(0); p < 8; p++ {
		m := pattern(byte(0x80+p), PageSize)
		msgs[p] = m
		storeSync(t, s, p*PageSize, m)
	}
	flushed, err := s.PowerFail()
	if err != nil {
		t.Fatal(err)
	}
	if flushed == 0 {
		t.Fatal("power fail flushed nothing despite dirty slots")
	}
	// "Reboot": a fresh system over the same NAND/FTL state. Simulate by
	// reading the pages straight from the FTL.
	for p, want := range msgs {
		var got []byte
		s.FTL.ReadPage(p, func(d []byte, err error) {
			if err != nil {
				t.Error(err)
			}
			got = d
		})
		s.K.Run()
		if !bytes.Equal(got[:len(want)], want) {
			t.Fatalf("page %d lost across power failure", p)
		}
	}
}

func TestRecoveryFromMetadata(t *testing.T) {
	s := mustSystem(t, smallConfig())
	for p := int64(0); p < 5; p++ {
		storeSync(t, s, p*PageSize, pattern(byte(p), 64))
	}
	// Snapshot the metadata area as the firmware would read it.
	meta := make([]byte, s.Layout.MetaSize)
	if err := s.DRAM.CopyOut(s.Layout.MetaOffset, meta); err != nil {
		t.Fatal(err)
	}
	n, err := s.Driver.RecoverFromMetadata(meta)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("recovered %d mappings, want 5", n)
	}
	for p := int64(0); p < 5; p++ {
		if !s.Driver.IsResident(p) {
			t.Fatalf("page %d not resident after recovery", p)
		}
	}
}

func TestCPUCacheCoherentPath(t *testing.T) {
	// With the functional CPU cache attached, eviction/refill must still be
	// byte-correct thanks to the driver's clflush/invalidate discipline.
	cfg := smallConfig()
	cfg.CPUCacheBytes = 32 << 10
	s := mustSystem(t, cfg)
	slots := s.Layout.NumSlots
	pages := slots + 8
	for p := 0; p < pages; p++ {
		storeSync(t, s, int64(p)*PageSize, pattern(byte(p*3), 128))
	}
	for p := 0; p < pages; p++ {
		got := loadSync(t, s, int64(p)*PageSize, 128)
		if !bytes.Equal(got, pattern(byte(p*3), 128)) {
			t.Fatalf("page %d corrupted with CPU cache in path", p)
		}
	}
	if err := s.CheckHealth(); err != nil {
		t.Fatal(err)
	}
}

func TestLRUPolicyKeepsHotPages(t *testing.T) {
	cfg := smallConfig()
	cfg.Driver.Policy = nvdc.PolicyLRU
	s := mustSystem(t, cfg)
	slots := s.Layout.NumSlots
	// Touch page 0 repeatedly while streaming through 2x slots.
	for p := 1; p < slots*2; p++ {
		storeSync(t, s, int64(p)*PageSize, pattern(byte(p), 64))
		if p%4 == 0 {
			_ = loadSync(t, s, 0, 64) // keep page 0 hot
		}
	}
	if !s.Driver.IsResident(0) {
		t.Fatal("LRU evicted the hottest page")
	}
}

func TestLRCPolicyEvictsByCachingOrder(t *testing.T) {
	// Under LRC, touching page 0 does NOT protect it: eviction follows
	// caching order (the paper's §IV-B caveat).
	s := mustSystem(t, smallConfig())
	slots := s.Layout.NumSlots
	storeSync(t, s, 0, pattern(9, 64))
	for p := 1; p <= slots; p++ {
		_ = loadSync(t, s, 0, 64) // hit page 0 constantly
		storeSync(t, s, int64(p)*PageSize, pattern(byte(p), 64))
	}
	if s.Driver.IsResident(0) {
		t.Fatal("LRC kept the first-cached page despite overflow")
	}
}

func TestCombinedCommandAblation(t *testing.T) {
	// Future-work item 4: merged writeback+cachefill must stay correct and
	// use fewer CP commands.
	cfg := smallConfig()
	cfg.Driver.CombineWBCF = true
	s := mustSystem(t, cfg)
	slots := s.Layout.NumSlots
	pages := slots + 10
	for p := 0; p < pages; p++ {
		storeSync(t, s, int64(p)*PageSize, pattern(byte(p), 96))
	}
	for p := 0; p < pages; p++ {
		got := loadSync(t, s, int64(p)*PageSize, 96)
		if !bytes.Equal(got, pattern(byte(p), 96)) {
			t.Fatalf("page %d corrupted with combined commands", p)
		}
	}
	st := s.Driver.Stats()
	if st.CombinedCmds == 0 {
		t.Fatal("no combined commands issued")
	}
	if st.Writebacks != 0 {
		t.Fatalf("separate writebacks (%d) despite CombineWBCF", st.Writebacks)
	}
	if err := s.CheckHealth(); err != nil {
		t.Fatal(err)
	}
}

func TestTrackDirtySkipsCleanWriteback(t *testing.T) {
	cfg := smallConfig()
	cfg.Driver.TrackDirty = true
	s := mustSystem(t, cfg)
	slots := s.Layout.NumSlots
	// Fill the cache with READS (clean pages), then stream more reads:
	// evictions must skip writeback.
	for p := 0; p < slots+10; p++ {
		_ = loadSync(t, s, int64(p)*PageSize, 64)
	}
	st := s.Driver.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions")
	}
	if st.Writebacks != 0 {
		t.Fatalf("%d writebacks for clean victims with TrackDirty", st.Writebacks)
	}
}

func TestWindowUtilizationBounded(t *testing.T) {
	// The NVMC must never move more than MaxBytesPerWindow of data per
	// window: bytes moved <= windows seen * budget.
	s := mustSystem(t, smallConfig())
	slots := s.Layout.NumSlots
	for p := 0; p < slots+20; p++ {
		storeSync(t, s, int64(p)*PageSize, pattern(byte(p), 64))
	}
	st := s.NVMC.Stats()
	moved := st.BytesToDRAM + st.BytesFromDRAM
	budget := uint64(s.Config.NVMC.MaxBytesPerWindow) * st.WindowsSeen
	if moved > budget {
		t.Fatalf("NVMC moved %d bytes in %d windows (budget %d)", moved, st.WindowsSeen, budget)
	}
}

func TestTraceRecordsChannelActivity(t *testing.T) {
	cfg := smallConfig()
	cfg.TraceCapacity = 256
	s := mustSystem(t, cfg)
	storeSync(t, s, 0, pattern(1, 64))
	// Let a few refresh cycles (and their windows) pass.
	s.RunFor(50 * sim.Microsecond)
	if s.Trace == nil {
		t.Fatal("trace not attached")
	}
	if s.Trace.Count(trace.KindRefresh) == 0 {
		t.Fatal("no refreshes traced")
	}
	if s.Trace.Count(trace.KindWindow) == 0 {
		t.Fatal("no windows traced")
	}
	if s.Trace.Count(trace.KindCollision) != 0 {
		t.Fatal("collision traced on healthy system")
	}
}

func TestSelfRefreshSilencesNVMC(t *testing.T) {
	// §IV-A: SRE decodes differently from REF, so the detector must not
	// fire and the NVMC must get no windows while the DIMM self-refreshes.
	s := mustSystem(t, smallConfig())
	s.RunFor(50 * sim.Microsecond)
	s.IMC.EnterSelfRefresh()
	s.RunFor(10 * sim.Microsecond) // let the SRE land
	before := s.NVMC.Stats().WindowsSeen
	det := s.Detector.Stats().Detections
	s.RunFor(300 * sim.Microsecond)
	if got := s.NVMC.Stats().WindowsSeen; got != before {
		t.Fatalf("NVMC saw %d windows during self-refresh", got-before)
	}
	if s.Detector.Stats().Detections != det {
		t.Fatal("detector fired during self-refresh")
	}
	s.IMC.ExitSelfRefresh()
	s.RunFor(100 * sim.Microsecond)
	if s.NVMC.Stats().WindowsSeen == before {
		t.Fatal("windows did not resume after SRX")
	}
	if err := s.CheckHealth(); err != nil {
		t.Fatal(err)
	}
}

func TestCoherenceDisciplineAblation(t *testing.T) {
	// §V-B both ways: with the clflush/sfence + invalidate discipline the
	// CPU-cached path survives evictions byte-perfectly (covered by
	// TestCPUCacheCoherentPath); with UnsafeNoFlush the same workload MUST
	// corrupt — stale CPU lines shadow NVMC fills and dirty lines are lost
	// to the writeback path.
	cfg := smallConfig()
	cfg.CPUCacheBytes = 32 << 10
	cfg.Driver.UnsafeNoFlush = true
	s := mustSystem(t, cfg)
	slots := s.Layout.NumSlots
	pages := slots + 16
	for p := 0; p < pages; p++ {
		storeSync(t, s, int64(p)*PageSize, pattern(byte(p*3), 128))
	}
	corrupted := 0
	for p := 0; p < pages; p++ {
		got := loadSync(t, s, int64(p)*PageSize, 128)
		if !bytes.Equal(got, pattern(byte(p*3), 128)) {
			corrupted++
		}
	}
	if corrupted == 0 {
		t.Fatal("UnsafeNoFlush produced no corruption — the coherence discipline would be unnecessary")
	}
	t.Logf("coherence ablation: %d/%d pages corrupted without clflush/invalidate", corrupted, pages)
}

type detStats struct {
	driver nvdc.Stats
	nvmc   interface{}
}

func TestDeterminism(t *testing.T) {
	// Identical configurations and workloads must produce identical
	// simulations — the reproducibility guarantee every experiment rests on.
	run := func() (uint64, sim.Time, detStats) {
		s := mustSystem(t, smallConfig())
		slots := s.Layout.NumSlots
		rng := sim.NewRand(123)
		for i := 0; i < 60; i++ {
			off := rng.Int63n(int64(slots+40)) * PageSize
			storeSync(t, s, off, pattern(byte(i), 200))
		}
		return s.K.Processed(), s.K.Now(), detStats{
			driver: s.Driver.Stats(),
			nvmc:   s.NVMC.Stats(),
		}
	}
	e1, t1, s1 := run()
	e2, t2, s2 := run()
	if e1 != e2 || t1 != t2 {
		t.Fatalf("nondeterministic: events %d vs %d, time %v vs %v", e1, e2, t1, t2)
	}
	if s1 != s2 {
		t.Fatalf("nondeterministic stats:\n%+v\n%+v", s1, s2)
	}
}

func TestWeakPersistenceDomain(t *testing.T) {
	// §V-C both ways. PoC-faithful (default): stores still sitting in the
	// WPQ when power fails can lose the race against the firmware flush.
	// With StrictADR (the paper's proposed future work), nothing is lost.
	run := func(strict bool) (lost int) {
		cfg := smallConfig()
		cfg.StrictADR = strict
		s := mustSystem(t, cfg)
		// Make pages resident first so the writes below are pure stores.
		for p := int64(0); p < 8; p++ {
			storeSync(t, s, p*PageSize, pattern(byte(p), 64))
		}
		// Post stores WITHOUT waiting: they sit in the WPQ.
		for p := int64(0); p < 8; p++ {
			s.Store(p*PageSize, pattern(byte(0xC0+p), 64), nil)
		}
		if s.IMC.WPQDepth() == 0 {
			t.Fatal("test setup: WPQ already drained")
		}
		if _, err := s.PowerFail(); err != nil {
			t.Fatal(err)
		}
		return s.LostWPQWrites()
	}
	if lost := run(true); lost != 0 {
		t.Fatalf("StrictADR lost %d writes", lost)
	}
	if lost := run(false); lost == 0 {
		t.Fatal("PoC-faithful power fail lost nothing despite a full WPQ (the weak domain would be a non-issue)")
	}
}
