package core

import "nvdimmc/internal/dax"

// daxDevice adapts the nvdc driver to the dax.Device interface: faults
// resolve to the physical DRAM address of the slot serving the page, and
// trims release both the slot and the media page.
type daxDevice struct{ s *System }

// DaxDevice returns the block device view the DAX filesystem mounts
// (/dev/nvdc0 in the paper, §IV-B).
func (s *System) DaxDevice() dax.Device { return daxDevice{s: s} }

func (d daxDevice) CapacityPages() int64 { return d.s.Driver.CapacityPages() }

func (d daxDevice) Fault(lpn int64, write bool, done func(physAddr int64)) {
	d.s.Driver.Fault(lpn, write, func(slot int) {
		done(d.s.Layout.SlotAddr(slot))
	})
}

func (d daxDevice) Trim(lpn int64) {
	// Drop the cached copy (its slot returns to the free pool) and release
	// the media page. Without the driver-side trim, re-allocating the block
	// to a new file would surface the dead file's stale bytes.
	d.s.Driver.Trim(lpn)
	d.s.FTL.Trim(lpn)
}

// MountDax formats and mounts a DAX filesystem over the module.
func (s *System) MountDax() *dax.FS { return dax.Mount(s.DaxDevice()) }
