package core

import (
	"fmt"

	"nvdimmc/internal/hostcost"
	"nvdimmc/internal/sim"
)

// FioTarget adapts a System to the fio workload runner: each op pays the
// pre-op host CPU cost on its thread, the nvdc serialized section under the
// driver lock, the fault path for each spanned page (hit or miss), and then
// the copy itself as interleaved CPU/bus chunks — memcpy is the data
// movement, so its CPU time and channel occupancy overlap refresh holds
// together.
type FioTarget struct {
	s    *System
	cost hostcost.Model

	footprint     int64
	walkFootprint int64
}

// NewFioTarget returns the fio adapter for the system.
func (s *System) NewFioTarget() *FioTarget {
	return &FioTarget{s: s, cost: hostcost.Default()}
}

// Name identifies the target in reports.
func (t *FioTarget) Name() string { return "nvdimm-c" }

// Kernel returns the system kernel.
func (t *FioTarget) Kernel() *sim.Kernel { return t.s.K }

// Capacity is the block device size.
func (t *FioTarget) Capacity() int64 { return t.s.Driver.CapacityPages() * PageSize }

// Prepare records the workload footprint.
func (t *FioTarget) Prepare(footprint int64) {
	t.footprint = footprint
	if t.walkFootprint == 0 {
		t.walkFootprint = footprint
	}
}

// SetWalkFootprint overrides the footprint used for TLB/page-walk costs.
// Scaled experiments set it to the paper's full-size footprint so the host
// software path is costed as on the real testbed while device offsets stay
// within the scaled capacity.
func (t *FioTarget) SetWalkFootprint(f int64) { t.walkFootprint = f }

// ThreadCPU is the pre-op host cost on the issuing thread.
func (t *FioTarget) ThreadCPU(n int, write bool) sim.Duration {
	return t.cost.DispatchCPU(n, write, t.walkFootprint)
}

// Do performs the device part of one op. It keeps the legacy error-free
// signature for fault-free workloads: any driver failure panics. Schedulers
// that must survive injected failures — the pool's fault-tolerant front end
// — dispatch through DoE instead.
func (t *FioTarget) Do(off int64, n int, write bool, done func()) {
	t.DoE(off, n, write, func(err error) {
		if err != nil {
			panic(fmt.Sprintf("core: fio op [%d,%d): %v", off, off+int64(n), err))
		}
		done()
	})
}

// DoE is Do with driver errors surfaced to done instead of panicking: a
// member that goes read-only, exhausts its CP retries or hits uncorrectable
// media mid-run fails the op with the driver's typed error (wrapping
// nvdc.ErrReadOnly, nvdc.ErrMediaRead or a *nvdc.CPTimeoutError) so the
// caller can retry, reroute or quarantine instead of wedging. On error the
// pages before the failing one have been faulted in; the transfer itself is
// all-or-nothing.
func (t *FioTarget) DoE(off int64, n int, write bool, done func(error)) {
	if off < 0 || off+int64(n) > t.Capacity() {
		panic(fmt.Sprintf("core: fio op [%d,%d) outside device", off, off+int64(n)))
	}
	s := t.s
	// Serialized driver section (lock shared with the miss path).
	s.Driver.Serialize(hostcost.NvdcSerialized(n), func() {
		first := off / PageSize
		last := (off + int64(n) - 1) / PageSize
		var faultPage func(lpn int64)
		faultPage = func(lpn int64) {
			if lpn > last {
				t.transfer(off, n, write, func() { done(nil) })
				return
			}
			s.Driver.FaultE(lpn, write, func(_ int, err error) {
				if err != nil {
					done(err)
					return
				}
				faultPage(lpn + 1)
			})
		}
		faultPage(first)
	})
}

// transfer moves the op's bytes over the channel as interleaved CPU/bus
// chunks. Sub-page ops address their slot; multi-page spans cover scattered
// slots, so they are charged at the slot-area base — only occupancy matters
// here, the functional byte path lives in System.Load/Store.
func (t *FioTarget) transfer(off int64, n int, write bool, done func()) {
	s := t.s
	first := off / PageSize
	last := (off + int64(n) - 1) / PageSize
	base := s.Layout.SlotsOffset
	if first == last {
		slot := s.Driver.SlotOf(first)
		if slot >= 0 {
			base = s.Layout.SlotAddr(slot) + off%PageSize
		}
	}
	chunks := hostcost.CopyChunks(n)
	cpuSlice := t.cost.CopyCPU(n) / sim.Duration(chunks)
	per := n / chunks
	i := 0
	var step func()
	step = func() {
		if i >= chunks {
			done()
			return
		}
		i++
		sz := per
		if i == chunks {
			sz = n - per*(chunks-1)
		}
		rs := 0
		if i == 1 {
			rs = 1
		}
		o := base + int64((i-1)*per)
		if o+int64(sz) > s.DRAM.Capacity() {
			o = base // clamp: occupancy-only transfer
		}
		buf := make([]byte, sz)
		cont := step
		s.K.Schedule(cpuSlice, func() {
			if write {
				s.IMC.WriteRS(o, buf, rs, cont)
			} else {
				s.IMC.ReadRS(o, buf, rs, cont)
			}
		})
	}
	step()
}
