// Package core assembles the NVDIMM-C system: the paper's primary
// contribution as one object. It wires the DRAM-cache DIMM, the shared DDR4
// channel, the host iMC, the refresh detector, the NVMC (FPGA + firmware +
// FTL + Z-NAND) and the nvdc driver into a runnable machine, and exposes the
// byte-addressable load/store path an application sees through fsdax.
//
// Geometry is scale-parameterized: experiments run with smaller DRAM cache
// and NAND arrays than the 16 GB + 128 GB PoC while preserving the ratios
// the results depend on (cache:media, tRFC:tREFI, op:window).
package core

import (
	"fmt"

	"nvdimmc/internal/bus"
	"nvdimmc/internal/conform"
	"nvdimmc/internal/cpucache"
	"nvdimmc/internal/ddr4"
	"nvdimmc/internal/dram"
	"nvdimmc/internal/fault"
	"nvdimmc/internal/ftl"
	"nvdimmc/internal/hostmem"
	"nvdimmc/internal/imc"
	"nvdimmc/internal/nand"
	"nvdimmc/internal/nvdc"
	"nvdimmc/internal/nvmc"
	"nvdimmc/internal/refdet"
	"nvdimmc/internal/sim"
	"nvdimmc/internal/trace"
)

// PageSize is the system-wide 4 KB management granularity.
const PageSize = 4096

// Config sizes and parameterizes a full NVDIMM-C system.
type Config struct {
	// Grade is the channel speed (the PoC is limited to DDR4-1600, §VI).
	Grade ddr4.SpeedGrade
	// TREFI is the refresh cadence (7.8 us normal; 3.9 "tREFI2"; 1.95
	// "tREFI4" per §VII-D).
	TREFI sim.Duration
	// TRFC is the programmed refresh cycle (1.25 us on the PoC: 350 ns
	// JEDEC + 900 ns extra window, §IV-A).
	TRFC sim.Duration

	// CacheBytes is the DRAM-cache module size (16 GB on the PoC).
	CacheBytes int64
	// MetaBytes is the metadata area size (16 MB on the PoC). Zero derives
	// a size just large enough for the slot count.
	MetaBytes int64
	// SlotFraction is the share of post-metadata space used as slots
	// (15/16 GB on the PoC).
	SlotFraction float64

	// NAND geometry (2 x 64 GB Z-NAND on the PoC; scale down for tests).
	NAND nand.Config
	FTL  ftl.Config
	NVMC nvmc.Config

	// Driver knobs: see nvdc.Config; layout is filled in by NewSystem.
	Driver nvdc.Config

	// CPUCacheBytes attaches a functional CPU cache model of this size to
	// the load/store path (0 = none; timing-only experiments skip it).
	CPUCacheBytes int

	// MechanismEnabled gates the refresh detector + window engine. The
	// ablation with it disabled demonstrates bus collisions (§III-B).
	MechanismEnabled bool

	// TraceCapacity, when positive, attaches a bounded event trace (the
	// logic-analyzer stand-in) to the channel and the NVMC.
	TraceCapacity int

	// Audit, when true (the default from DefaultConfig), attaches the
	// internal/conform protocol auditor to the trace event stream: every
	// bus command, refresh hold, window, data burst and CP exchange is
	// checked against the paper's invariants as it happens, and
	// CheckHealth fails on any violation. Costs one event struct per bus
	// action; disable only for raw-throughput measurements.
	Audit bool

	// StrictADR makes the power-fail sequence drain the WPQ into the DRAM
	// cache BEFORE the firmware flush reads it — the ADR-detection future
	// work of §V-C. The default (false) is PoC-faithful: the two run in
	// parallel and in-flight WPQ stores can lose the race (the "weak
	// persistence domain").
	StrictADR bool

	// IMC holds the host memory-controller knobs.
	IMC imc.Config

	// Seed, when non-zero, master-seeds every component RNG (NAND bad-block
	// placement and media noise, refresh-detector sampling noise) with
	// per-component values derived via sim.SplitSeed, so an entire run
	// replays from this one printed number.
	Seed uint64

	// FaultSeed, when non-zero, attaches a fault-injection registry
	// (internal/fault) seeded with this value to every device model. The
	// assembled registry is exposed as System.Faults; arm rules on it
	// before running the workload. Zero leaves the system fault-free with
	// only nil-check overhead in the models.
	FaultSeed uint64
}

// DefaultConfig returns a laptop-scale system preserving the PoC's ratios:
// 16 MB DRAM cache standing in for 16 GB, 128 MB of Z-NAND for 128 GB.
func DefaultConfig() Config {
	n := nand.DefaultConfig()
	// 2 ch x 2 dies x 256 blocks x 64 pages x 4 KB = 256 MB raw by default;
	// trim to 128 MB raw for the 1:8 cache:media ratio.
	n.BlocksPerDie = 128
	imcCfg := imc.DefaultConfig()
	return Config{
		Grade:            ddr4.DDR4_1600,
		TREFI:            ddr4.TREFI,
		TRFC:             1250 * sim.Nanosecond,
		CacheBytes:       16 << 20,
		MetaBytes:        0,
		SlotFraction:     0.9375,
		NAND:             n,
		FTL:              ftl.DefaultConfig(),
		NVMC:             nvmc.DefaultConfig(),
		CPUCacheBytes:    0,
		MechanismEnabled: true,
		Audit:            true,
		IMC:              imcCfg,
	}
}

// System is a fully assembled NVDIMM-C machine.
type System struct {
	K        *sim.Kernel
	Config   Config
	DRAM     *dram.Device
	Channel  *bus.Channel
	IMC      *imc.Controller
	Detector *refdet.Detector
	NAND     *nand.Array
	FTL      *ftl.FTL
	NVMC     *nvmc.Controller
	Driver   *nvdc.Driver
	CPUCache *cpucache.Cache
	Layout   hostmem.Layout
	// Trace is non-nil when Config.TraceCapacity > 0.
	Trace *trace.Log
	// Auditor is non-nil when Config.Audit is set: the always-on protocol
	// invariant checker fed by the trace event stream.
	Auditor *conform.Auditor
	// rec fans trace events out to the ring log, the auditor and any
	// sinks attached via AttachSink.
	rec *trace.Recorder
	// Faults is non-nil when Config.FaultSeed != 0: the seeded registry all
	// device models consult for injected failures.
	Faults *fault.Registry

	lostWPQ int
}

// LostWPQWrites reports posted stores that lost the §V-C power-fail race
// (zero with StrictADR).
func (s *System) LostWPQWrites() int { return s.lostWPQ }

// NewSystem assembles and boots a system: the BIOS-equivalent setup
// (refresh running, metadata initialized) completes before return.
func NewSystem(cfg Config) (*System, error) {
	k := sim.NewKernel()

	// DRAM-cache DIMM geometry from CacheBytes: 16 banks, 8 KB rows.
	timing := ddr4.NewTiming(cfg.Grade)
	timing.TRFC = cfg.TRFC
	timing.TREFI = cfg.TREFI
	if err := timing.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	const banks, burstsPerRow = 16, 128
	rowBytes := int64(burstsPerRow * ddr4.BurstBytes)
	rows := cfg.CacheBytes / (int64(banks) * rowBytes)
	if rows < 1 {
		return nil, fmt.Errorf("core: cache %d B too small", cfg.CacheBytes)
	}
	dcfg := dram.Config{
		Timing:       timing,
		Banks:        banks,
		Rows:         int(rows),
		BurstsPerRow: burstsPerRow,
		StandardTRFC: ddr4.Density8Gb.StandardTRFC(),
	}
	dev := dram.New(k, dcfg)

	ch := bus.New(k, dev)

	imcCfg := cfg.IMC
	imcCfg.TREFI = cfg.TREFI
	imcCfg.TRFC = cfg.TRFC
	mc := imc.New(k, ch, imcCfg)

	det := refdet.New(k, timing.TCK)
	det.SetEnabled(cfg.MechanismEnabled)
	ch.AttachSnoop(det.Snoop())

	// One master seed reproduces every probabilistic model: per-component
	// streams are derived, not shared, so adding a draw in one model never
	// perturbs another.
	if cfg.Seed != 0 {
		cfg.NAND.Seed = sim.SplitSeed(cfg.Seed, "nand")
		det.SetSeed(sim.SplitSeed(cfg.Seed, "refdet"))
	}

	arr := nand.New(k, cfg.NAND)
	f := ftl.New(k, arr, cfg.FTL)

	// Region layout over the DRAM cache (region base = DRAM address 0).
	metaBytes := cfg.MetaBytes
	if metaBytes == 0 {
		// Size for the worst case slot count (all post-meta space).
		metaBytes = ((dev.Capacity()/PageSize)*4 + 16 + PageSize - 1) &^ (PageSize - 1)
	}
	layout, err := hostmem.NewLayout(dev.Capacity(), metaBytes, cfg.SlotFraction)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	nc := nvmc.New(k, ch, det, f, layout, cfg.NVMC)
	nc.SetEnabled(cfg.MechanismEnabled)

	var cache *cpucache.Cache
	if cfg.CPUCacheBytes > 0 {
		cache = cpucache.New(dev, cfg.CPUCacheBytes)
	}

	drvCfg := cfg.Driver
	if drvCfg.MapCost == 0 {
		drvCfg = nvdc.DefaultConfig(layout)
		drvCfg.Policy = cfg.Driver.Policy
		drvCfg.TrackDirty = cfg.Driver.TrackDirty
		drvCfg.CombineWBCF = cfg.Driver.CombineWBCF
		drvCfg.UnsafeNoFlush = cfg.Driver.UnsafeNoFlush
		drvCfg.CPQueueDepth = cfg.Driver.CPQueueDepth
		drvCfg.Hypothetical = cfg.Driver.Hypothetical
		drvCfg.TD = cfg.Driver.TD
		if cfg.Driver.TDOverlap != 0 {
			drvCfg.TDOverlap = cfg.Driver.TDOverlap
		}
	} else {
		drvCfg.Layout = layout
	}
	// The filesystem's written/unwritten-extent knowledge: a block has media
	// data iff the FTL maps it.
	drvCfg.MediaWritten = f.IsMapped
	drv, err := nvdc.New(k, mc, cache, f.LogicalPages(), drvCfg)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	s := &System{
		K: k, Config: cfg, DRAM: dev, Channel: ch, IMC: mc,
		Detector: det, NAND: arr, FTL: f, NVMC: nc, Driver: drv,
		CPUCache: cache, Layout: layout,
	}
	if cfg.FaultSeed != 0 {
		g := fault.NewRegistry(k, cfg.FaultSeed)
		arr.SetFaults(g)
		nc.SetFaults(g)
		ch.SetFaults(g)
		det.SetFaults(g)
		s.Faults = g
	}
	// One recorder feeds every observer of channel/NVMC/detector activity.
	rec := &trace.Recorder{}
	s.rec = rec
	if cfg.TraceCapacity > 0 {
		s.Trace = trace.New(cfg.TraceCapacity)
		rec.Attach(s.Trace)
	}
	if cfg.Audit {
		s.Auditor = conform.New(conform.Params{
			TCK:               timing.TCK,
			TREFI:             cfg.TREFI,
			TRFC:              cfg.TRFC,
			StandardTRFC:      dcfg.StandardTRFC,
			WindowGuard:       cfg.NVMC.WindowGuard,
			MaxBytesPerWindow: cfg.NVMC.MaxBytesPerWindow,
			Banks:             banks,
		})
		rec.Attach(s.Auditor)
	}
	if rec.Active() {
		ch.Trace = rec
		nc.Trace = rec
		det.Trace = rec
	}
	// Boot: let the metadata-initialization write drain before refresh
	// begins (the refresh engine reschedules forever, so a full Run would
	// never return).
	k.Run()
	mc.StartRefresh()
	return s, nil
}

// AttachSink subscribes an additional observer to the trace event stream
// (tests pin golden traces this way). Must be called before the activity of
// interest; events are not replayed.
func (s *System) AttachSink(sink trace.Sink) {
	s.rec.Attach(sink)
	s.Channel.Trace = s.rec
	s.NVMC.Trace = s.rec
	s.Detector.Trace = s.rec
}

// Run drains all pending events (the refresh engine keeps scheduling, so
// prefer RunFor/RunUntilIdle in workloads).
func (s *System) Run() { s.K.Run() }

// RunFor advances simulated time by d.
func (s *System) RunFor(d sim.Duration) { s.K.RunFor(d) }

// FastForwardIdle advances the system to target exactly like
// s.K.RunUntil(target), but when the member is provably quiescent it warps
// over whole idle refresh cycles instead of executing their events. A
// quiescent member's only activity is the tREFI-cadence refresh chain —
// REF hold, PREA+REF, detection, an extra-tRFC window whose polls all find
// stale CP slots — and every cycle leaves the system in the same state up
// to a handful of counters and timestamps, which the per-component
// Warp* hooks replay in O(1). Observable state (printed stats, DRAM bytes,
// auditor verdicts, future event timing) is byte-identical to the naive
// run; only the kernel's processed-event count diverges.
//
// Eligibility is checked conservatively; on any doubt the method falls
// back to plain RunUntil, so it is always safe to call.
func (s *System) FastForwardIdle(target sim.Time) {
	// A refresh chain in flight at entry (the boundary landed mid-cycle)
	// blocks the one-pending-event check; drain it the naive way first —
	// its events all land by lastREF+tRFC — then try to warp the rest.
	if s.K.Now() < target && s.K.Pending() > 1 {
		if nr, on := s.IMC.NextRefreshAt(); on {
			tail := nr.Add(-s.Config.TREFI).Add(s.Config.TRFC)
			if tail > target {
				tail = target
			}
			if tail > s.K.Now() {
				s.K.RunUntil(tail)
			}
		}
	}
	if m, polls, rLast, ok := s.warpPlan(target); ok {
		s.applyWarp(m, polls, rLast)
	}
	// Drains the invalidated stale refresh closure (a generation-guarded
	// no-op) and, when the next refresh chain straddles target, begins it
	// for real — exactly as the naive run would.
	s.K.RunUntil(target)
}

// warpPlan decides whether idle refresh cycles can be warped before target
// and how many. ok requires proof that every skipped event would have been
// part of a clean idle refresh cycle:
//
//   - no fault registry (fault consults mutate RNG and hit counters),
//     no detector sampling noise: each cycle is deterministic and clean;
//   - mechanism on, not in self-refresh, and a real extra window
//     programmed: the cycle shape is hold→PREA→REF→detect→window→polls;
//   - every NVMC slot idle with a stale CP word: the windows are poll-only;
//   - no trace ring or extra sinks (they would miss the warped events;
//     the auditor is the one sink the warp replays into);
//   - exactly one pending kernel event, and it is the refresh closure:
//     nothing else can happen before target except refresh cycles.
func (s *System) warpPlan(target sim.Time) (m uint64, polls int, rLast sim.Time, ok bool) {
	if s.Faults != nil || !s.Config.MechanismEnabled {
		return 0, 0, 0, false
	}
	if !s.Detector.Enabled() || s.Detector.BitErrorRate != 0 {
		return 0, 0, 0, false
	}
	if s.Trace != nil {
		return 0, 0, 0, false
	}
	expectSinks := 0
	if s.Auditor != nil {
		expectSinks = 1
	}
	if s.rec.Sinks() != expectSinks {
		return 0, 0, 0, false
	}
	if s.IMC.InSelfRefresh() || s.DRAM.InSelfRefresh() {
		return 0, 0, 0, false
	}
	trfc := s.Config.TRFC
	if s.DRAM.Config().StandardTRFC+s.Config.NVMC.WindowGuard >= trfc {
		return 0, 0, 0, false // no usable window: cycle shape differs
	}
	nr, on := s.IMC.NextRefreshAt()
	if !on {
		return 0, 0, 0, false
	}
	next, any := s.K.NextAt()
	if !any || s.K.Pending() != 1 || next != nr {
		return 0, 0, 0, false
	}
	// m whole cycles fit: the m-th REF at nr+(m-1)*tREFI completes its
	// chain (all events ≤ REF+tRFC) by target.
	if nr.Add(trfc) > target {
		return 0, 0, 0, false
	}
	// The NVMC slot probe (CP-word decode) is the expensive check: last.
	polls, ok = s.NVMC.WarpEligible()
	if !ok {
		return 0, 0, 0, false
	}
	m = uint64(target.Sub(nr.Add(trfc))/s.Config.TREFI) + 1
	rLast = nr.Add(sim.Duration(m-1) * s.Config.TREFI)
	return m, polls, rLast, true
}

// applyWarp replays the aggregate effect of m idle refresh cycles into
// every component the chain touches. The iMC goes last: it invalidates the
// queued refresh closure and schedules a fresh one on the advanced cadence.
func (s *System) applyWarp(m uint64, polls int, rLast sim.Time) {
	trfc := s.Config.TRFC
	s.Channel.DataBus.WarpGrants(m, trfc, rLast)
	s.Channel.WarpIdleRefreshCycles(m, rLast, uint64(polls)*16)
	s.DRAM.WarpIdleRefreshCycles(m, rLast, uint64(polls))
	s.Detector.WarpIdleRefreshCycles(m)
	s.NVMC.WarpIdleWindows(m, rLast)
	if s.Auditor != nil {
		s.Auditor.WarpIdleRefreshCycles(m, rLast, polls)
	}
	s.IMC.WarpIdleRefreshes(m)
}

// RunUntil steps until cond() holds, bounded by maxSim time to catch hangs.
func (s *System) RunUntil(cond func() bool, maxSim sim.Duration) error {
	deadline := s.K.Now().Add(maxSim)
	for !cond() {
		if s.K.Now() > deadline {
			return fmt.Errorf("core: condition not met within %v", maxSim)
		}
		if !s.K.Step() {
			return fmt.Errorf("core: kernel drained before condition met")
		}
	}
	return nil
}

// CheckHealth asserts the invariants that must hold after any workload when
// the mechanism is enabled: no bus collisions, no DRAM protocol violations,
// no refresh-detector false positives, consistent FTL state.
func (s *System) CheckHealth() error {
	if n := s.K.NegativeDelays(); n != 0 {
		return fmt.Errorf("core: %d negative-delay Schedule calls clamped (causality bug in a model)", n)
	}
	if n := s.Channel.CollisionCount(); n != 0 {
		return fmt.Errorf("core: %d bus collisions: first: %v", n, s.Channel.Collisions()[0])
	}
	if n := s.DRAM.ViolationCount(); n != 0 {
		return fmt.Errorf("core: %d DRAM protocol violations: first: %v", n, s.DRAM.Violations()[0])
	}
	st := s.Detector.Stats()
	if st.FalsePositives != 0 {
		return fmt.Errorf("core: %d refresh-detector false positives", st.FalsePositives)
	}
	if err := s.FTL.CheckInvariants(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	// Protocol audit: violations are never acceptable, faults or not — the
	// injected fault set is recoverable by design, so a protocol breach
	// under injection is still a bug in the mechanism.
	if s.Auditor != nil {
		if err := s.Auditor.Err(); err != nil {
			return fmt.Errorf("core: %w", err)
		}
	}
	// Fault accounting: without any injected fault the error paths must be
	// silent and the driver healthy; with faults fired, the degradation
	// state must be backed by matching counters.
	ctr := s.Driver.Counters()
	ds := s.Driver.Stats()
	if s.Faults == nil || s.Faults.TotalFired() == 0 {
		if name, v, bad := ctr.NonZero(nvdc.ErrorCounterNames()...); bad {
			return fmt.Errorf("core: error counter %q = %d with no injected faults", name, v)
		}
		if ds.Mode != nvdc.ModeHealthy {
			return fmt.Errorf("core: driver mode %v with no injected faults", ds.Mode)
		}
		if ds.SlotsQuarantined != 0 {
			return fmt.Errorf("core: %d quarantined slots with no injected faults", ds.SlotsQuarantined)
		}
		return nil
	}
	if ds.Mode == nvdc.ModeDegraded && ctr.Get(nvdc.CtrModeDegraded) == 0 {
		return fmt.Errorf("core: driver degraded without a counted transition")
	}
	if ds.Mode == nvdc.ModeReadOnly && ctr.Get(nvdc.CtrModeReadOnly) == 0 {
		return fmt.Errorf("core: driver read-only without a counted transition")
	}
	if got, want := ds.SlotsQuarantined, int(ctr.Get(nvdc.CtrSlotQuarantined)); got != want {
		return fmt.Errorf("core: %d quarantined slots but counter says %d", got, want)
	}
	if ds.Mode == nvdc.ModeHealthy &&
		(ctr.Get(nvdc.CtrCachefillFail) != 0 || ctr.Get(nvdc.CtrWritebackFail) != 0) {
		return fmt.Errorf("core: hard failures counted but driver still healthy")
	}
	return nil
}

// --- Byte-addressable application path -------------------------------------

// Load reads len(buf) bytes at device offset off through the DAX mapping:
// faults make pages resident, then data moves from the DRAM cache. done runs
// when the data is in buf. Any driver failure panics; fault-injection
// workloads use LoadErr.
func (s *System) Load(off int64, buf []byte, done func()) {
	s.access(off, buf, false, mustAccess(done))
}

// Store writes data at device offset off through the DAX mapping. Any driver
// failure panics; fault-injection workloads use StoreErr.
func (s *System) Store(off int64, data []byte, done func()) {
	s.access(off, data, true, mustAccess(done))
}

// LoadErr is Load with driver errors (read-only mode, exhausted retries,
// uncorrectable media) surfaced to done instead of panicking. On error the
// prefix of buf before the failing page may already be filled.
func (s *System) LoadErr(off int64, buf []byte, done func(error)) {
	s.access(off, buf, false, done)
}

// StoreErr is Store with driver errors surfaced to done. On error the pages
// before the failing one have been written (and, in degraded mode, persisted).
func (s *System) StoreErr(off int64, data []byte, done func(error)) {
	s.access(off, data, true, done)
}

func mustAccess(done func()) func(error) {
	return func(err error) {
		if err != nil {
			panic(fmt.Sprintf("core: access: %v", err))
		}
		if done != nil {
			done()
		}
	}
}

func (s *System) access(off int64, buf []byte, write bool, done func(error)) {
	if off < 0 || off+int64(len(buf)) > s.Driver.CapacityPages()*PageSize {
		panic(fmt.Sprintf("core: access [%d,%d) outside device", off, off+int64(len(buf))))
	}
	if done == nil {
		done = func(error) {}
	}
	if len(buf) == 0 {
		done(nil)
		return
	}
	// Split by page, fault each, then move that page's span.
	var step func(pos int)
	step = func(pos int) {
		if pos >= len(buf) {
			done(nil)
			return
		}
		cur := off + int64(pos)
		lpn := cur / PageSize
		pageOff := cur % PageSize
		n := int(PageSize - pageOff)
		if n > len(buf)-pos {
			n = len(buf) - pos
		}
		s.Driver.FaultE(lpn, write, func(slot int, err error) {
			if err != nil {
				done(err)
				return
			}
			addr := s.Layout.SlotAddr(slot) + pageOff
			span := buf[pos : pos+n]
			// In degraded mode every store is written through to the NVM
			// media before it is acknowledged, so the suspect DRAM cache
			// never holds the only copy of acked data.
			next := func() { step(pos + n) }
			if write && s.Driver.Mode() == nvdc.ModeDegraded {
				next = func() {
					s.Driver.FlushLPN(lpn, func(ferr error) {
						if ferr != nil {
							done(ferr)
							return
						}
						step(pos + n)
					})
				}
			}
			if s.CPUCache != nil {
				// Functional movement through the CPU cache; bus time is
				// charged via the iMC below only for the cache misses the
				// model would have had — approximated by charging the span.
				var cerr error
				if write {
					cerr = s.CPUCache.Store(addr, span)
				} else {
					cerr = s.CPUCache.Load(addr, span)
				}
				if cerr != nil {
					panic(fmt.Sprintf("core: cpu cache: %v", cerr))
				}
				s.K.Schedule(0, next)
				return
			}
			if write {
				s.IMC.Write(addr, span, next)
			} else {
				s.IMC.Read(addr, span, next)
			}
		})
	}
	step(0)
}

// PowerFail triggers the §V-C power-loss sequence and returns the number of
// dirty pages flushed to Z-NAND once the battery-backed flush completes.
// Unless Config.StrictADR is set, in-flight WPQ stores race the firmware
// flush and may be lost (LostWPQWrites reports how many were).
func (s *System) PowerFail() (int, error) {
	// The host dies first: no driver code runs past this instant, so pending
	// ack polls and retries must not fire (or count errors) while the
	// battery-backed flush drains below.
	s.Driver.Halt()
	_, lost := s.IMC.ADRFlushRacing(!s.Config.StrictADR)
	s.lostWPQ += lost
	s.IMC.StopRefresh()
	var flushed int
	var ferr error
	doneFlag := false
	s.NVMC.PowerFail(func(n int, err error) {
		flushed, ferr = n, err
		doneFlag = true
	})
	s.K.RunWhile(func() bool { return !doneFlag })
	if ferr != nil {
		return flushed, ferr
	}
	return flushed, nil
}
