package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"nvdimmc/internal/fault"
	"nvdimmc/internal/nvdc"
	"nvdimmc/internal/sim"
)

// faultConfig is smallConfig with a tiny cache (so evictions are cheap to
// force) and the fault registry armed.
func faultConfig() Config {
	cfg := smallConfig()
	cfg.CacheBytes = 128 << 10 // ~29 slots after metadata
	cfg.Seed = 0x5EED
	cfg.FaultSeed = 0xFA17
	return cfg
}

// prewriteMedia puts a page on the NVM media directly through the FTL, so a
// subsequent DAX access takes the full CP cachefill path (unwritten pages
// would use the no-CP fast fill).
func prewriteMedia(t *testing.T, s *System, lpn int64, data []byte) {
	t.Helper()
	done := false
	s.FTL.WritePage(lpn, data, func(err error) {
		if err != nil {
			t.Fatalf("prewrite lpn %d: %v", lpn, err)
		}
		done = true
	})
	if err := s.RunUntil(func() bool { return done }, 100*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
}

func loadErrSync(t *testing.T, s *System, off int64, n int) ([]byte, error) {
	t.Helper()
	buf := make([]byte, n)
	var ferr error
	done := false
	s.LoadErr(off, buf, func(err error) { ferr = err; done = true })
	if err := s.RunUntil(func() bool { return done }, 200*sim.Millisecond); err != nil {
		t.Fatalf("load at %d: %v", off, err)
	}
	return buf, ferr
}

func storeErrSync(t *testing.T, s *System, off int64, data []byte) error {
	t.Helper()
	var ferr error
	done := false
	s.StoreErr(off, data, func(err error) { ferr = err; done = true })
	if err := s.RunUntil(func() bool { return done }, 200*sim.Millisecond); err != nil {
		t.Fatalf("store at %d: %v", off, err)
	}
	return ferr
}

// mediaPage reads a logical page straight from the FTL (bypassing the DRAM
// cache) — the arbiter of what is actually persistent.
func mediaPage(t *testing.T, s *System, lpn int64) []byte {
	t.Helper()
	var got []byte
	done := false
	s.FTL.ReadPage(lpn, func(d []byte, err error) {
		if err != nil {
			t.Fatalf("media read lpn %d: %v", lpn, err)
		}
		got = d
		done = true
	})
	if err := s.RunUntil(func() bool { return done }, 100*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	return got
}

// TestFaultMatrixTransient exercises one injected transient fault per
// injection site against the driver's retry machinery: in every case the
// access must still return correct data, the recovery must be visible in the
// error counters, and the driver must remain healthy.
func TestFaultMatrixTransient(t *testing.T) {
	cases := []struct {
		name string
		arm  func(g *fault.Registry)
		// wantCounter names a driver counter that must be non-zero after
		// recovery ("" skips the check).
		wantCounter string
		check       func(t *testing.T, s *System)
	}{
		{
			name:        "cp-ack-drop",
			arm:         func(g *fault.Registry) { g.OnOccurrence(fault.CPAckDrop, 1) },
			wantCounter: nvdc.CtrAckTimeout,
			check: func(t *testing.T, s *System) {
				if got := s.NVMC.Stats().AcksDropped; got != 1 {
					t.Fatalf("AcksDropped = %d, want 1", got)
				}
				if s.Driver.Counters().Get(nvdc.CtrCPReissue) == 0 {
					t.Fatal("ack loss must force a CP re-issue")
				}
			},
		},
		{
			name:        "cp-ack-corrupt",
			arm:         func(g *fault.Registry) { g.OnOccurrence(fault.CPAckCorrupt, 1) },
			wantCounter: nvdc.CtrAckChecksumBad,
			check: func(t *testing.T, s *System) {
				if got := s.NVMC.Stats().AcksCorrupted; got != 1 {
					t.Fatalf("AcksCorrupted = %d, want 1", got)
				}
			},
		},
		{
			name:        "nvmc-firmware-stall",
			arm:         func(g *fault.Registry) { g.OnOccurrence(fault.NVMCFirmwareStall, 1) },
			wantCounter: nvdc.CtrAckTimeout,
			check: func(t *testing.T, s *System) {
				if got := s.NVMC.Stats().FirmwareStalls; got != 1 {
					t.Fatalf("FirmwareStalls = %d, want 1", got)
				}
			},
		},
		{
			name: "nvmc-window-overrun",
			arm:  func(g *fault.Registry) { g.OnOccurrence(fault.NVMCWindowOverrun, 1) },
			check: func(t *testing.T, s *System) {
				if got := s.NVMC.Stats().WindowOverruns; got != 1 {
					t.Fatalf("WindowOverruns = %d, want 1", got)
				}
			},
		},
		{
			// One upset absorbed by the FTL's internal reread plus one more
			// on the reread: the device acks an error and the DRIVER's
			// cachefill retry recovers.
			name:        "nand-read-bitflip-double",
			arm:         func(g *fault.Registry) { g.OnOccurrence(fault.NANDReadBitFlip, 1).Times(2) },
			wantCounter: nvdc.CtrCachefillRetry,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := mustSystem(t, faultConfig())
			want := pattern(0xC3, PageSize)
			prewriteMedia(t, s, 5, want)
			tc.arm(s.Faults)

			got, err := loadErrSync(t, s, 5*PageSize, PageSize)
			if err != nil {
				t.Fatalf("access must survive the transient fault: %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatal("data corrupted across fault recovery")
			}
			if s.Faults.TotalFired() == 0 {
				t.Fatal("fault never fired — test exercises nothing")
			}
			if tc.wantCounter != "" && s.Driver.Counters().Get(tc.wantCounter) == 0 {
				t.Fatalf("counter %q did not record the recovery:\n%v",
					tc.wantCounter, s.Driver.Counters())
			}
			if m := s.Driver.Mode(); m != nvdc.ModeHealthy {
				t.Fatalf("driver mode %v after recoverable fault, want healthy", m)
			}
			if tc.check != nil {
				tc.check(t, s)
			}
			if err := s.CheckHealth(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBusSnoopDropLosesOneWindowOnly(t *testing.T) {
	s := mustSystem(t, faultConfig())
	s.Faults.OnOccurrence(fault.BusSnoopDrop, 1)
	// Idle run: the only CA traffic is the refresh engine, so the dropped
	// snoop is a REF the detector never sees — one lost window.
	s.RunFor(100 * sim.Microsecond)
	if got := s.Channel.SnoopDrops(); got != 1 {
		t.Fatalf("SnoopDrops = %d, want 1", got)
	}
	// The system keeps working: a CP round trip still completes.
	want := pattern(0x11, PageSize)
	prewriteMedia(t, s, 3, want)
	got, err := loadErrSync(t, s, 3*PageSize, PageSize)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("access after snoop drop: err=%v", err)
	}
	if err := s.CheckHealth(); err != nil {
		t.Fatal(err)
	}
}

func TestCachefillHardFailQuarantinesAndDegrades(t *testing.T) {
	s := mustSystem(t, faultConfig())
	want := pattern(0x77, PageSize)
	prewriteMedia(t, s, 9, want)
	s.Faults.Always(fault.NANDReadBitFlip)

	_, err := loadErrSync(t, s, 9*PageSize, PageSize)
	if err == nil {
		t.Fatal("persistent uncorrectable reads must surface an error")
	}
	if !errors.Is(err, nvdc.ErrMediaRead) {
		t.Fatalf("err = %v, want ErrMediaRead", err)
	}
	ds := s.Driver.Stats()
	if ds.Mode != nvdc.ModeDegraded {
		t.Fatalf("mode = %v, want degraded", ds.Mode)
	}
	if ds.SlotsQuarantined != 1 {
		t.Fatalf("quarantined = %d, want 1", ds.SlotsQuarantined)
	}
	if err := s.CheckHealth(); err != nil {
		t.Fatal(err)
	}

	// Cause clears: reads recover (fresh slot), but the mode stays degraded
	// (forward-only) and every store now writes through to the media.
	s.Faults.Clear(fault.NANDReadBitFlip)
	got, err := loadErrSync(t, s, 9*PageSize, PageSize)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("read after cause cleared: err=%v", err)
	}
	st := pattern(0x88, PageSize)
	if err := storeErrSync(t, s, 20*PageSize, st); err != nil {
		t.Fatalf("degraded store: %v", err)
	}
	if s.Driver.Counters().Get(nvdc.CtrWriteThrough) == 0 {
		t.Fatal("degraded mode must write acked stores through")
	}
	// The write-through ack is posted; let the NAND program land.
	s.RunFor(sim.Millisecond)
	if !s.FTL.IsMapped(20) {
		t.Fatal("write-through never reached the media")
	}
	if !bytes.Equal(mediaPage(t, s, 20), st) {
		t.Fatal("media copy differs from acked store")
	}
	if err := s.CheckHealth(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteThroughFailGoesReadOnly(t *testing.T) {
	cfg := faultConfig()
	cfg.NVMC.AckAfterProgram = true // surface program failures to the driver
	s := mustSystem(t, cfg)

	want := pattern(0x3C, PageSize)
	storeSync(t, s, 4*PageSize, want)
	s.Faults.Always(fault.NANDProgramFail)

	var ferr error
	done := false
	s.Driver.FlushLPN(4, func(err error) { ferr = err; done = true })
	if err := s.RunUntil(func() bool { return done }, 200*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if ferr == nil {
		t.Fatal("flush must fail when every program fails")
	}
	if m := s.Driver.Mode(); m != nvdc.ModeReadOnly {
		t.Fatalf("mode = %v, want read-only", m)
	}
	// Acked data is still served from the (intact) DRAM slot.
	got, err := loadErrSync(t, s, 4*PageSize, PageSize)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("read-only read of acked data: err=%v", err)
	}
	// Writes are refused with the typed error.
	if err := storeErrSync(t, s, 4*PageSize, want); !errors.Is(err, nvdc.ErrReadOnly) {
		t.Fatalf("store in read-only mode: err=%v, want ErrReadOnly", err)
	}
	if err := s.CheckHealth(); err != nil {
		t.Fatal(err)
	}
}

// TestWritebackFailRestoresVictim is the acked-data-safety property for the
// eviction path: when the writeback of a dirty victim fails hard, the victim
// mapping is restored (its bytes are still in the DRAM slot), the driver
// goes read-only, and every previously acked page remains readable.
func TestWritebackFailRestoresVictim(t *testing.T) {
	cfg := faultConfig()
	cfg.NVMC.AckAfterProgram = true
	s := mustSystem(t, cfg)

	n := s.Layout.NumSlots
	contents := make(map[int64][]byte, n)
	for i := 0; i < n; i++ {
		lpn := int64(i)
		data := pattern(byte(0x40+i), PageSize)
		storeSync(t, s, lpn*PageSize, data)
		contents[lpn] = data
	}
	s.Faults.Always(fault.NANDProgramFail)

	// One more store: the miss needs an eviction, the eviction needs a
	// writeback, and every NAND program now fails.
	err := storeErrSync(t, s, int64(n)*PageSize, pattern(0xEE, PageSize))
	if err == nil {
		t.Fatal("eviction store must fail when the writeback path is dead")
	}
	if m := s.Driver.Mode(); m != nvdc.ModeReadOnly {
		t.Fatalf("mode = %v, want read-only", m)
	}
	// Every acked page — including the restored victim — still reads back.
	for lpn, want := range contents {
		if !s.Driver.IsResident(lpn) {
			t.Fatalf("acked lpn %d lost residency after writeback failure", lpn)
		}
		got, lerr := loadErrSync(t, s, lpn*PageSize, PageSize)
		if lerr != nil || !bytes.Equal(got, want) {
			t.Fatalf("acked lpn %d unreadable after writeback failure: %v", lpn, lerr)
		}
	}
	// A read miss would need an eviction too: typed refusal, no data loss.
	if _, lerr := loadErrSync(t, s, int64(n+1)*PageSize, PageSize); !errors.Is(lerr, nvdc.ErrReadOnly) {
		t.Fatalf("read-miss in read-only mode: err=%v, want ErrReadOnly", lerr)
	}
	if err := s.CheckHealth(); err != nil {
		t.Fatal(err)
	}
}

// TestFaultRunReproducible: two systems built from the same printed seeds
// must produce byte-identical behaviour under probabilistic fault injection.
func TestFaultRunReproducible(t *testing.T) {
	run := func() (string, string) {
		s := mustSystem(t, faultConfig())
		s.Faults.Prob(fault.CPAckDrop, 0.3)
		s.Faults.Prob(fault.NANDReadBitFlip, 0.05)
		for i := int64(0); i < 8; i++ {
			prewriteMedia(t, s, i, pattern(byte(i), PageSize))
		}
		var log []byte
		for i := int64(0); i < 8; i++ {
			got, err := loadErrSync(t, s, i*PageSize, PageSize)
			log = append(log, fmt.Sprintf("lpn %d err=%v sum=%x\n", i, err, got[0]^got[4095])...)
		}
		return s.Faults.String() + string(log), s.Driver.Counters().String()
	}
	log1, ctr1 := run()
	log2, ctr2 := run()
	if log1 != log2 || ctr1 != ctr2 {
		t.Fatalf("same seed, different runs:\n--- run1\n%s%s\n--- run2\n%s%s", log1, ctr1, log2, ctr2)
	}
	t.Logf("replay seed line: %s", log1[:60])
}
