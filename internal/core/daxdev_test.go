package core

import (
	"bytes"
	"testing"

	"nvdimmc/internal/sim"
)

func TestDaxFileEndToEnd(t *testing.T) {
	// The full Fig. 6 path: file -> mmap -> translate (fault) -> load/store
	// at the translated physical address -> contents durable per page.
	s := mustSystem(t, smallConfig())
	fs := s.MountDax()
	f, err := fs.Create("table.dat", 8*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	m := f.Mmap(16)

	msg := pattern(0x42, 512)
	// Store through the mapping.
	stored := false
	m.Translate(3*PageSize+64, true, func(phys int64, err error) {
		if err != nil {
			t.Fatal(err)
		}
		s.IMC.Write(phys, msg, func() { stored = true })
	})
	if err := s.RunUntil(func() bool { return stored }, sim.Second); err != nil {
		t.Fatal(err)
	}

	// Load back through a *fresh* mapping (fresh TLB/PTEs: re-fault).
	m2 := f.Mmap(16)
	var got []byte
	loaded := false
	m2.Translate(3*PageSize+64, false, func(phys int64, err error) {
		if err != nil {
			t.Fatal(err)
		}
		got = make([]byte, len(msg))
		s.IMC.Read(phys, got, func() { loaded = true })
	})
	if err := s.RunUntil(func() bool { return loaded }, sim.Second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("dax file round trip mismatch")
	}

	faults, _, _, _ := m.Stats()
	if faults != 1 {
		t.Fatalf("first mapping faulted %d times, want 1", faults)
	}
	if err := s.CheckHealth(); err != nil {
		t.Fatal(err)
	}
}

func TestDaxSecondTouchNoFault(t *testing.T) {
	s := mustSystem(t, smallConfig())
	fs := s.MountDax()
	f, err := fs.Create("f", 2*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	m := f.Mmap(8)
	for i := 0; i < 5; i++ {
		done := false
		m.Translate(100, false, func(int64, error) { done = true })
		if err := s.RunUntil(func() bool { return done }, sim.Second); err != nil {
			t.Fatal(err)
		}
	}
	faults, _, tlbHits, _ := m.Stats()
	if faults != 1 {
		t.Fatalf("faults = %d, want 1", faults)
	}
	if tlbHits < 3 {
		t.Fatalf("tlb hits = %d, want >= 3", tlbHits)
	}
}

func TestDaxRemoveTrimsMedia(t *testing.T) {
	s := mustSystem(t, smallConfig())
	fs := s.MountDax()
	f, err := fs.Create("victim", 4*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	// Dirty a page and force it to media via power-fail-style flush: write
	// through the system path, evict by overflowing, then remove the file.
	done := false
	m := f.Mmap(8)
	m.Translate(0, true, func(phys int64, err error) {
		if err != nil {
			t.Fatal(err)
		}
		s.IMC.Write(phys, []byte{0xEE}, func() { done = true })
	})
	if err := s.RunUntil(func() bool { return done }, sim.Second); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("victim"); err != nil {
		t.Fatal(err)
	}
	if fs.FreePages() != s.Driver.CapacityPages() {
		t.Fatalf("free pages = %d, want full device", fs.FreePages())
	}
}

func TestDaxReallocationReadsZero(t *testing.T) {
	// Write into a file, remove it, create a new file over the same device
	// pages: the new file must read zeros, not the dead file's bytes.
	s := mustSystem(t, smallConfig())
	fs := s.MountDax()
	f, err := fs.Create("old", 2*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	m := f.Mmap(8)
	done := false
	m.Translate(0, true, func(phys int64, err error) {
		if err != nil {
			t.Fatal(err)
		}
		s.IMC.Write(phys, []byte("secret"), func() { done = true })
	})
	if err := s.RunUntil(func() bool { return done }, sim.Second); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("old"); err != nil {
		t.Fatal(err)
	}
	g, err := fs.Create("new", 2*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	m2 := g.Mmap(8)
	var got []byte
	done = false
	m2.Translate(0, false, func(phys int64, err error) {
		if err != nil {
			t.Fatal(err)
		}
		got = make([]byte, 6)
		s.IMC.Read(phys, got, func() { done = true })
	})
	if err := s.RunUntil(func() bool { return done }, sim.Second); err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatalf("reallocated block leaked dead data: %q", got)
		}
	}
}
