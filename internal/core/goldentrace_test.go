package core

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nvdimmc/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden trace file")

// goldenSink captures the full event stream as rendered lines.
type goldenSink struct{ lines []string }

func (g *goldenSink) Record(e trace.Event) { g.lines = append(g.lines, e.String()) }

// TestGoldenReadMissTrace pins the canonical read-miss sequence — CP fetch
// command, refresh window, in-window NVMC data movement, ack — byte for
// byte against testdata/read_miss_trace.golden. The simulation is fully
// deterministic, so any diff here is a real protocol or timing change: if
// it is intentional, regenerate with
//
//	go test ./internal/core -run TestGoldenReadMissTrace -update
//
// and review the diff like code.
func TestGoldenReadMissTrace(t *testing.T) {
	cfg := smallConfig()
	cfg.Seed = 0x60D7
	s := mustSystem(t, cfg)

	// Put a page on the media so the access is a full CP cachefill.
	prewriteMedia(t, s, 5, pattern(0xC3, PageSize))

	sink := &goldenSink{}
	s.AttachSink(sink)
	if got := loadSync(t, s, 5*PageSize, PageSize); !bytes.Equal(got, pattern(0xC3, PageSize)) {
		t.Fatal("miss returned wrong data")
	}
	got := strings.Join(sink.lines, "\n") + "\n"

	// The trace must contain the full §IV-C sequence in order.
	idx := -1
	for _, want := range []string{"cp-cmd", "window", "nvmc-data", "cp-ack"} {
		at := strings.Index(got[idx+1:], want)
		if at < 0 {
			t.Fatalf("trace missing %q after offset %d:\n%s", want, idx, got)
		}
		idx += 1 + at
	}

	path := filepath.Join("testdata", "read_miss_trace.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d lines)", path, len(sink.lines))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if string(want) != got {
		t.Fatalf("trace drifted from %s — timing or protocol change; if intentional, re-run with -update\n--- want\n%s--- got\n%s",
			path, want, got)
	}

	if err := s.CheckHealth(); err != nil {
		t.Fatal(err)
	}
}

