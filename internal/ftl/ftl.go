// Package ftl implements the flash translation layer that runs on one of
// the NVDIMM-C firmware cores (§IV-A): a page-mapped FTL over the Z-NAND
// array with wear-leveling, greedy garbage collection and bad-block
// management. The FTL exposes logical 4 KB pages; the usable capacity is
// the raw capacity minus over-provisioning (the PoC exposes 120 GB of the
// 128 GB raw Z-NAND, §VI).
package ftl

import (
	"fmt"

	"nvdimmc/internal/nand"
	"nvdimmc/internal/sim"
)

// PageSize is the FTL management granularity.
const PageSize = nand.PageSize

// Config parameterizes the FTL.
type Config struct {
	// OverProvisionPct is the fraction of raw blocks reserved for GC
	// headroom, in percent. The PoC reserves 128-120 = 6.25%.
	OverProvisionPct float64
	// GCLowWaterBlocks triggers foreground GC when the free-block pool of a
	// die drops to this size.
	GCLowWaterBlocks int
	// CoreOverhead is the firmware processing time per FTL operation
	// (mapping lookup/update on the Cortex-A53).
	CoreOverhead sim.Duration
}

// DefaultConfig matches the PoC proportions.
func DefaultConfig() Config {
	return Config{
		OverProvisionPct: 6.25,
		GCLowWaterBlocks: 2,
		CoreOverhead:     1 * sim.Microsecond,
	}
}

type blockMeta struct {
	addr     nand.PageAddr // page index unused
	valid    int
	inflight int     // programs issued but not yet completed
	lpns     []int64 // per page: owning logical page, -1 if invalid/unwritten
	inPool   bool
	open     bool
	nextPage int
	erasing  bool
}

type dieState struct {
	free []*blockMeta // free pool, kept min-erase-first on allocation
	open *blockMeta
	all  []*blockMeta
	gc   bool // GC in progress on this die
}

const unmapped = int64(-1)

// FTL is the flash translation layer.
type FTL struct {
	k   *sim.Kernel
	arr *nand.Array
	cfg Config

	// mapping: logical page -> physical location (die-scoped block/page).
	mapping map[int64]nand.PageAddr

	// writeBuf holds the latest accepted-but-not-yet-programmed data per
	// logical page. Reads hit it so a read issued right after a posted
	// write returns the new data (the controller's battery-backed write
	// buffer; without it, writeback-then-cachefill of the same page would
	// read stale NAND).
	writeBuf map[int64][]byte
	writeSeq map[int64]uint64
	seq      uint64

	dies    []*dieState // flattened channel*die
	nextDie int         // round-robin write striping
	logical int64       // number of logical pages exposed

	core *sim.Resource // the FTL firmware core

	// debugLog, when non-nil, records mapping/commit events (tests).
	debugLog func(format string, args ...interface{})

	// stalled holds writes that arrived while every die was out of free
	// space; they drain as GC returns blocks to the pool (foreground GC
	// stall, the behaviour a real FTL exhibits when the drive is full).
	stalled []stalledWrite

	// Stats.
	hostWrites, gcWrites, gcRuns uint64
	readOps                      uint64
	readRetries                  uint64
	supersededWrites             uint64
	grownBad                     uint64
	stallEvents                  uint64
}

type stalledWrite struct {
	lpn         int64
	data        []byte
	gc          bool
	commitCheck func() bool
	done        func(error)
}

// New builds the FTL over arr, skipping factory bad blocks.
func New(k *sim.Kernel, arr *nand.Array, cfg Config) *FTL {
	f := &FTL{
		k:        k,
		arr:      arr,
		cfg:      cfg,
		mapping:  make(map[int64]nand.PageAddr),
		writeBuf: make(map[int64][]byte),
		writeSeq: make(map[int64]uint64),
		core:     sim.NewResource(k, "ftl-core"),
	}
	ncfg := arr.Config()
	usable := 0
	for c := 0; c < ncfg.Channels; c++ {
		for d := 0; d < ncfg.DiesPerChan; d++ {
			ds := &dieState{}
			for b := 0; b < ncfg.BlocksPerDie; b++ {
				addr := nand.PageAddr{Channel: c, Die: d, Block: b}
				if arr.IsBad(addr) {
					continue
				}
				bm := &blockMeta{addr: addr, lpns: make([]int64, ncfg.PagesPerBlock), inPool: true}
				for i := range bm.lpns {
					bm.lpns[i] = unmapped
				}
				ds.free = append(ds.free, bm)
				ds.all = append(ds.all, bm)
				usable++
			}
			f.dies = append(f.dies, ds)
		}
	}
	// Logical capacity: good blocks minus over-provisioning.
	logicalBlocks := int(float64(usable) * (1 - cfg.OverProvisionPct/100))
	f.logical = int64(logicalBlocks) * int64(ncfg.PagesPerBlock)
	return f
}

// LogicalPages returns the number of 4 KB logical pages exposed.
func (f *FTL) LogicalPages() int64 { return f.logical }

// Capacity returns the usable capacity in bytes.
func (f *FTL) Capacity() int64 { return f.logical * PageSize }

// Stats reports host writes, GC writes (write amplification source), GC runs
// and grown bad blocks.
func (f *FTL) Stats() (hostWrites, gcWrites, gcRuns, grownBad uint64) {
	return f.hostWrites, f.gcWrites, f.gcRuns, f.grownBad
}

// WriteAmplification returns (host+gc)/host writes, or 1 if no writes yet.
func (f *FTL) WriteAmplification() float64 {
	if f.hostWrites == 0 {
		return 1
	}
	return float64(f.hostWrites+f.gcWrites) / float64(f.hostWrites)
}

// IsMapped reports whether the logical page has ever been written.
func (f *FTL) IsMapped(lpn int64) bool {
	_, ok := f.mapping[lpn]
	return ok
}

func (f *FTL) checkLPN(lpn int64) error {
	if lpn < 0 || lpn >= f.logical {
		return fmt.Errorf("ftl: lpn %d out of range [0,%d)", lpn, f.logical)
	}
	return nil
}

// ReadPage fetches logical page lpn. Never-written pages complete
// immediately with a zero page (block-device semantics).
func (f *FTL) ReadPage(lpn int64, done func(data []byte, err error)) {
	if err := f.checkLPN(lpn); err != nil {
		done(nil, err)
		return
	}
	f.core.Acquire(f.cfg.CoreOverhead, func(sim.Time) {
		if buf, ok := f.writeBuf[lpn]; ok {
			// Write-buffer hit: the freshest data has not reached NAND yet.
			out := make([]byte, PageSize)
			copy(out, buf)
			done(out, nil)
			return
		}
		addr, ok := f.mapping[lpn]
		if !ok {
			done(make([]byte, PageSize), nil)
			return
		}
		f.readOps++
		f.arr.Read(addr, func(data []byte, err error) {
			if err == nil {
				done(data, nil)
				return
			}
			// Uncorrectable ECC error: one read-retry (shifted read levels
			// recover marginal pages on real media) before surfacing it.
			f.readRetries++
			f.arr.Read(addr, done)
		})
	})
}

// WritePage stores a full logical page. The write is acknowledged once the
// data is programmed into NAND.
func (f *FTL) WritePage(lpn int64, data []byte, done func(err error)) {
	if err := f.checkLPN(lpn); err != nil {
		if done != nil {
			done(err)
		}
		return
	}
	if len(data) != PageSize {
		if done != nil {
			done(fmt.Errorf("ftl: write size %d != %d", len(data), PageSize))
		}
		return
	}
	owned := make([]byte, PageSize)
	copy(owned, data)
	f.core.Acquire(f.cfg.CoreOverhead, func(sim.Time) {
		f.hostWrites++
		f.seq++
		seq := f.seq
		f.writeBuf[lpn] = owned
		f.writeSeq[lpn] = seq
		check := func() bool { return f.writeSeq[lpn] == seq }
		f.appendWrite(lpn, owned, false, check, func(err error) {
			// Retire the buffer entry unless a newer write replaced it.
			if f.writeSeq[lpn] == seq {
				delete(f.writeBuf, lpn)
				delete(f.writeSeq, lpn)
			}
			if done != nil {
				done(err)
			}
		})
	})
}

// Trim unmaps a logical page without writing.
func (f *FTL) Trim(lpn int64) {
	delete(f.writeBuf, lpn)
	delete(f.writeSeq, lpn)
	if addr, ok := f.mapping[lpn]; ok {
		f.invalidate(addr)
		delete(f.mapping, lpn)
	}
}

func (f *FTL) invalidate(addr nand.PageAddr) {
	ds := f.dieFor(addr)
	for _, bm := range ds.all {
		if bm.addr.Block == addr.Block {
			if bm.lpns[addr.Page] != unmapped {
				bm.lpns[addr.Page] = unmapped
				bm.valid--
			}
			return
		}
	}
}

func (f *FTL) dieFor(addr nand.PageAddr) *dieState {
	return f.dies[addr.Channel*f.arr.Config().DiesPerChan+addr.Die]
}

// allocOpen ensures die ds has an open block, taking the least-worn free
// block (wear-leveling). Returns nil if the die has no usable space. Unless
// gc is set, the globally last free block is held back as GC headroom so the
// reclaim path can never deadlock on space.
func (f *FTL) allocOpen(ds *dieState, gc bool) *blockMeta {
	if ds.open != nil && ds.open.nextPage < f.arr.Config().PagesPerBlock {
		return ds.open
	}
	if ds.open != nil {
		ds.open.open = false
		ds.open = nil
	}
	if len(ds.free) == 0 {
		return nil
	}
	if !gc && len(ds.free) <= 1 {
		// The last free block of each die is GC headroom: die-local GC can
		// then always relocate a victim's live pages.
		return nil
	}
	// Least-worn free block.
	best := 0
	for i, bm := range ds.free {
		if f.arr.Erases(bm.addr) < f.arr.Erases(ds.free[best].addr) {
			best = i
		}
	}
	bm := ds.free[best]
	ds.free = append(ds.free[:best], ds.free[best+1:]...)
	bm.inPool = false
	bm.open = true
	bm.nextPage = 0
	ds.open = bm
	return bm
}

// maxProgramRetries bounds the program-fail remap loop: each attempt retires
// the failing block and rewrites elsewhere, so hitting the bound means the
// media is systematically refusing programs (every block failing) and the
// write must surface an error rather than consume the whole array.
const maxProgramRetries = 8

// appendWrite places data at the next free physical page of the round-robin
// die, updating the mapping. gc marks GC relocation traffic. commitCheck, if
// non-nil, runs at program completion: when it reports false the write was
// superseded while in flight (a newer host write to the same lpn, or a GC
// relocation whose source moved) and the freshly programmed page is left
// invalid instead of clobbering the newer mapping.
func (f *FTL) appendWrite(lpn int64, data []byte, gc bool, commitCheck func() bool, done func(error)) {
	f.appendWriteN(nil, lpn, data, gc, commitCheck, done, 0)
}

// appendWriteOn is appendWrite pinned to one die when target is non-nil
// (die-local GC relocation: with one reserved block per die, a victim's
// valid pages — at most PagesPerBlock-1 of them — always fit, so GC can
// never wedge on space).
func (f *FTL) appendWriteOn(target *dieState, lpn int64, data []byte, gc bool, commitCheck func() bool, done func(error)) {
	f.appendWriteN(target, lpn, data, gc, commitCheck, done, 0)
}

// appendWriteN carries the program-fail retry count through remap attempts.
func (f *FTL) appendWriteN(target *dieState, lpn int64, data []byte, gc bool, commitCheck func() bool, done func(error), attempt int) {
	// Pick a die: the pinned one for GC, round-robin for host writes.
	var ds *dieState
	var bm *blockMeta
	if target != nil {
		if b := f.allocOpen(target, gc); b != nil {
			ds, bm = target, b
		}
	} else {
		start := f.nextDie
		for i := 0; i < len(f.dies); i++ {
			cand := f.dies[(start+i)%len(f.dies)]
			if b := f.allocOpen(cand, gc); b != nil {
				ds, bm = cand, b
				f.nextDie = (start + i + 1) % len(f.dies)
				break
			}
		}
	}
	if ds == nil {
		// Every die is out of programmable pages: stall until GC returns a
		// block to some free pool. GC writes are never stalled (they would
		// deadlock the reclaim path); their die always has the erased victim
		// pending, so a failure here means the device is truly wedged.
		if gc {
			if done != nil {
				done(fmt.Errorf("ftl: GC relocation found no free blocks"))
			}
			return
		}
		f.stallEvents++
		f.stalled = append(f.stalled, stalledWrite{lpn: lpn, data: data, gc: gc, commitCheck: commitCheck, done: done})
		// Kick GC on every die: the stall may be observable only here (all
		// open blocks just filled up with no program completion pending).
		for _, d := range f.dies {
			f.maybeGC(d)
		}
		return
	}
	page := bm.nextPage
	bm.nextPage++ // reserve in FTL metadata; nand enforces order too
	bm.inflight++
	if bm.nextPage >= f.arr.Config().PagesPerBlock {
		// Last page reserved: close the block so GC can take it as a victim.
		bm.open = false
		if ds.open == bm {
			ds.open = nil
		}
	}
	addr := bm.addr
	addr.Page = page
	f.arr.Program(addr, data, func(err error) {
		bm.inflight--
		if err != nil {
			// Grown bad block: retire and retry elsewhere, up to the remap
			// bound — persistent program failure must surface, not consume
			// the array block by block.
			f.grownBad++
			f.arr.MarkBad(bm.addr)
			bm.nextPage = f.arr.Config().PagesPerBlock // close it
			if attempt+1 >= maxProgramRetries {
				if done != nil {
					done(fmt.Errorf("ftl: program of lpn %d failed after %d remap attempts: %w", lpn, attempt+1, err))
				}
				return
			}
			f.appendWriteN(nil, lpn, data, gc, commitCheck, done, attempt+1)
			return
		}
		if commitCheck != nil && !commitCheck() {
			// Superseded while the program was in flight: leave the page
			// invalid (GC reclaims it) and keep the newer mapping intact.
			f.supersededWrites++
			if done != nil {
				done(nil)
			}
			return
		}
		// Invalidate the previous location, commit the new mapping.
		if bm.lpns[page] != unmapped {
			panic(fmt.Sprintf("ftl: double commit on %v page %d (holds lpn %d, committing %d)", bm.addr, page, bm.lpns[page], lpn))
		}
		if old, ok := f.mapping[lpn]; ok {
			f.invalidate(old)
		}
		if f.debugLog != nil {
			f.debugLog("commit lpn=%d -> %v (gc=%v)", lpn, addr, gc)
		}
		f.mapping[lpn] = addr
		bm.lpns[page] = lpn
		bm.valid++
		if gc {
			f.gcWrites++
		}
		f.maybeGC(ds)
		if done != nil {
			done(nil)
		}
	})
}

// maybeGC starts garbage collection on the die when its free pool is low.
func (f *FTL) maybeGC(ds *dieState) {
	if ds.gc || len(ds.free) > f.cfg.GCLowWaterBlocks {
		return
	}
	// Victim: closed block with fewest valid pages (greedy), not open/pool.
	var victim *blockMeta
	for _, bm := range ds.all {
		if bm.inPool || bm.open || bm.erasing {
			continue
		}
		if bm.nextPage < f.arr.Config().PagesPerBlock {
			continue // not fully written yet
		}
		if bm.valid >= f.arr.Config().PagesPerBlock {
			continue // fully valid: erasing it reclaims nothing
		}
		if bm.inflight > 0 {
			continue // programs still in flight; erasing would lose them
		}
		if victim == nil || bm.valid < victim.valid {
			victim = bm
		}
	}
	if victim == nil {
		return
	}
	ds.gc = true
	f.gcRuns++
	if f.debugLog != nil {
		f.debugLog("gc select victim %v valid=%d", victim.addr, victim.valid)
	}
	f.relocate(ds, victim, 0)
}

// relocate moves valid pages out of victim starting at page index i, then
// erases it and returns it to the free pool.
func (f *FTL) relocate(ds *dieState, victim *blockMeta, i int) {
	pages := f.arr.Config().PagesPerBlock
	for i < pages && victim.lpns[i] == unmapped {
		i++
	}
	if i >= pages {
		// A victim must hold no live pages by now; valid==0 is the O(1)
		// equivalent of scanning the mapping (CheckInvariants ties the two).
		if victim.valid != 0 {
			panic(fmt.Sprintf("ftl: erasing %v with %d live pages", victim.addr, victim.valid))
		}
		if f.debugLog != nil {
			f.debugLog("gc erase %v", victim.addr)
		}
		victim.erasing = true
		f.arr.Erase(victim.addr, func(err error) {
			victim.erasing = false
			if err != nil {
				f.grownBad++
				f.arr.MarkBad(victim.addr)
				ds.gc = false
				return
			}
			for j := range victim.lpns {
				victim.lpns[j] = unmapped
			}
			victim.valid = 0
			victim.nextPage = 0
			victim.inPool = true
			ds.free = append(ds.free, victim)
			ds.gc = false
			f.drainStalled()
			// Low water may still hold: chain another GC pass.
			f.maybeGC(ds)
		})
		return
	}
	lpn := victim.lpns[i]
	src := victim.addr
	src.Page = i
	f.arr.Read(src, func(data []byte, err error) {
		if err != nil {
			ds.gc = false
			return
		}
		// The page may have been overwritten by the host while we read it;
		// skip relocation if the mapping moved — and re-check at program
		// completion too (the host can overtake the in-flight relocation).
		if cur, ok := f.mapping[lpn]; !ok || cur != src {
			f.relocate(ds, victim, i+1)
			return
		}
		check := func() bool {
			cur, ok := f.mapping[lpn]
			return ok && cur == src
		}
		f.appendWriteOn(ds, lpn, data, true, check, func(err error) {
			if err != nil {
				// Should be unreachable with die-local GC and the per-die
				// reserve; abort rather than erase live data regardless.
				ds.gc = false
				return
			}
			f.relocate(ds, victim, i+1)
		})
	})
}

// drainStalled retries writes parked while the device was out of space.
func (f *FTL) drainStalled() {
	// One retry pass per call: a write that immediately re-stalls must not
	// spin the loop.
	n := len(f.stalled)
	for i := 0; i < n && len(f.stalled) > 0; i++ {
		w := f.stalled[0]
		f.stalled = f.stalled[1:]
		f.appendWrite(w.lpn, w.data, w.gc, w.commitCheck, w.done)
	}
}

// StallEvents reports how many host writes had to wait for GC space.
func (f *FTL) StallEvents() uint64 { return f.stallEvents }

// ReadRetries reports ECC-triggered read retries.
func (f *FTL) ReadRetries() uint64 { return f.readRetries }

// SupersededWrites reports in-flight writes abandoned because a newer write
// to the same logical page overtook them.
func (f *FTL) SupersededWrites() uint64 { return f.supersededWrites }

// FreeBlocks returns the total free-pool size across dies (for tests).
func (f *FTL) FreeBlocks() int {
	n := 0
	for _, ds := range f.dies {
		n += len(ds.free)
	}
	return n
}

// CheckInvariants validates internal consistency: every mapping points at a
// page whose reverse entry matches, and valid counts agree. Tests call this
// after workloads.
func (f *FTL) CheckInvariants() error {
	for lpn, addr := range f.mapping {
		ds := f.dieFor(addr)
		found := false
		for _, bm := range ds.all {
			if bm.addr.Block != addr.Block {
				continue
			}
			found = true
			if bm.lpns[addr.Page] != lpn {
				return fmt.Errorf("ftl: lpn %d maps to %v but reverse entry is %d", lpn, addr, bm.lpns[addr.Page])
			}
		}
		if !found {
			return fmt.Errorf("ftl: lpn %d maps to unknown block %v", lpn, addr)
		}
	}
	for _, ds := range f.dies {
		for _, bm := range ds.all {
			n := 0
			for _, l := range bm.lpns {
				if l != unmapped {
					n++
				}
			}
			if n != bm.valid {
				return fmt.Errorf("ftl: block %v valid=%d but %d live lpns", bm.addr, bm.valid, n)
			}
		}
	}
	return nil
}
