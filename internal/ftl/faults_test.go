package ftl

import (
	"bytes"
	"testing"

	"nvdimmc/internal/fault"
	"nvdimmc/internal/nand"
	"nvdimmc/internal/sim"
)

// newFaultyFTL builds an FTL over a NAND array with an armed-but-empty fault
// registry attached.
func newFaultyFTL(t *testing.T, blocksPerDie, pagesPerBlock int) (*sim.Kernel, *FTL, *nand.Array, *fault.Registry) {
	t.Helper()
	k := sim.NewKernel()
	ncfg := nand.DefaultConfig()
	ncfg.InitialBadBlockPPM = 0
	ncfg.BlocksPerDie = blocksPerDie
	ncfg.PagesPerBlock = pagesPerBlock
	ncfg.ProgramLatency = 10 * sim.Microsecond
	ncfg.EraseLatency = 50 * sim.Microsecond
	arr := nand.New(k, ncfg)
	g := fault.NewRegistry(k, 0xF71)
	arr.SetFaults(g)
	f := New(k, arr, DefaultConfig())
	return k, f, arr, g
}

func TestProgramFailRemapsAndRewrites(t *testing.T) {
	k, f, arr, g := newFaultyFTL(t, 16, 8)
	g.Always(fault.NANDProgramFail).Times(1)

	var werr error
	f.WritePage(3, pageOf(33), func(err error) { werr = err })
	k.Run()
	if werr != nil {
		t.Fatalf("write should survive one program failure via remap: %v", werr)
	}
	_, _, _, grownBad := f.Stats()
	if grownBad != 1 {
		t.Fatalf("grownBad = %d, want 1 (failed block retired)", grownBad)
	}
	if _, _, _, pf := arr.Stats(); pf != 1 {
		t.Fatalf("nand programFails = %d, want 1", pf)
	}
	var got []byte
	f.ReadPage(3, func(d []byte, err error) {
		if err != nil {
			t.Error(err)
		}
		got = d
	})
	k.Run()
	if !bytes.Equal(got, pageOf(33)) {
		t.Fatal("data mismatch after remap-and-rewrite")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestProgramFailBoundedRetries(t *testing.T) {
	k, f, _, g := newFaultyFTL(t, 16, 8)
	g.Always(fault.NANDProgramFail)

	var werr error
	f.WritePage(3, pageOf(33), func(err error) { werr = err })
	k.Run()
	if werr == nil {
		t.Fatal("write must fail once remap attempts are exhausted")
	}
	if g.Fired(fault.NANDProgramFail) != maxProgramRetries {
		t.Fatalf("fired %d program faults, want %d (one per remap attempt)",
			g.Fired(fault.NANDProgramFail), maxProgramRetries)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEraseFailMarksBlockBad(t *testing.T) {
	// Overwrite pressure forces GC; the first reclaim erase fails and the
	// block is retired instead of returning to the pool. Data must survive.
	k, f, _, g := newFaultyFTL(t, 8, 4)
	g.OnOccurrence(fault.NANDEraseFail, 1)

	raw := 2 * 2 * 8 * 4
	errs := 0
	for i := 0; i < raw*4; i++ {
		f.WritePage(0, pageOf(int64(i)), func(err error) {
			if err != nil {
				errs++
			}
		})
		k.Run()
	}
	if errs != 0 {
		t.Fatalf("%d writes failed under erase-fail injection", errs)
	}
	if g.Fired(fault.NANDEraseFail) != 1 {
		t.Fatalf("erase fault fired %d times, want 1", g.Fired(fault.NANDEraseFail))
	}
	_, _, _, grownBad := f.Stats()
	if grownBad < 1 {
		t.Fatal("failed erase did not retire the block")
	}
	var got []byte
	f.ReadPage(0, func(d []byte, _ error) { got = d })
	k.Run()
	if !bytes.Equal(got, pageOf(int64(raw*4-1))) {
		t.Fatal("data lost after erase failure")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReadBitFlipRetryAtFTL(t *testing.T) {
	// A one-shot uncorrectable read upset: the FTL's internal read retry
	// rereads the page and succeeds.
	k, f, _, g := newFaultyFTL(t, 16, 8)

	var werr error
	f.WritePage(7, pageOf(77), func(err error) { werr = err })
	k.Run()
	if werr != nil {
		t.Fatal(werr)
	}
	g.OnOccurrence(fault.NANDReadBitFlip, 1)

	var got []byte
	var rerr error
	f.ReadPage(7, func(d []byte, err error) { got, rerr = d, err })
	k.Run()
	if rerr != nil {
		t.Fatalf("read should survive a transient upset via retry: %v", rerr)
	}
	if !bytes.Equal(got, pageOf(77)) {
		t.Fatal("data mismatch after read retry")
	}
	if f.ReadRetries() == 0 {
		t.Fatal("expected an ECC-triggered read retry")
	}
}
