package ftl

import (
	"bytes"
	"testing"
)

// FuzzFTLMapping drives the FTL with an arbitrary write/read/trim op stream
// decoded from the fuzz input (two bytes per op: selector+payload, lpn) and
// checks, against a shadow map, that the mapping machinery never lies:
// every read returns the last written page (or zeros when unmapped),
// IsMapped tracks the shadow exactly, and the structural invariants hold
// after every GC the stream provokes.
func FuzzFTLMapping(f *testing.F) {
	f.Add([]byte{0, 1, 1, 1, 2, 1, 0, 2})           // write, read, trim, write
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 1, 0})     // hammer one lpn, then read
	f.Add(bytes.Repeat([]byte{0, 3, 0, 4, 0, 5}, 8)) // overwrite churn -> GC
	f.Fuzz(func(t *testing.T, data []byte) {
		const maxOps = 64
		if len(data) > 2*maxOps {
			data = data[:2*maxOps]
		}
		k, ftl := newFTL(t, 16, 8)
		logical := ftl.LogicalPages()
		shadow := map[int64]int64{} // lpn -> tag of last acked write
		var tag int64

		for i := 0; i+1 < len(data); i += 2 {
			lpn := int64(data[i+1]) % logical
			switch data[i] % 3 {
			case 0: // write
				tag++
				want := tag
				ftl.WritePage(lpn, pageOf(want), func(err error) {
					if err != nil {
						t.Fatalf("write lpn %d: %v", lpn, err)
					}
				})
				k.Run()
				shadow[lpn] = want
			case 1: // read + verify
				ftl.ReadPage(lpn, func(got []byte, err error) {
					if err != nil {
						t.Fatalf("read lpn %d: %v", lpn, err)
					}
					want, ok := shadow[lpn]
					if !ok {
						if !bytes.Equal(got, make([]byte, PageSize)) {
							t.Fatalf("unmapped lpn %d read nonzero", lpn)
						}
						return
					}
					if !bytes.Equal(got, pageOf(want)) {
						t.Fatalf("lpn %d: read does not match last write (tag %d)", lpn, want)
					}
				})
				k.Run()
			case 2: // trim
				ftl.Trim(lpn)
				k.Run()
				delete(shadow, lpn)
			}
			if _, inShadow := shadow[lpn]; ftl.IsMapped(lpn) != inShadow {
				t.Fatalf("IsMapped(%d) = %v, shadow says %v", lpn, ftl.IsMapped(lpn), inShadow)
			}
			if err := ftl.CheckInvariants(); err != nil {
				t.Fatalf("after op %d: %v", i/2, err)
			}
		}
		// Final sweep: the whole shadow must read back.
		for lpn, want := range shadow {
			lpn, want := lpn, want
			ftl.ReadPage(lpn, func(got []byte, err error) {
				if err != nil || !bytes.Equal(got, pageOf(want)) {
					t.Fatalf("final readback lpn %d: err=%v", lpn, err)
				}
			})
		}
		k.Run()
	})
}
