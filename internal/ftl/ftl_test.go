package ftl

import (
	"bytes"
	"encoding/binary"
	"testing"

	"nvdimmc/internal/nand"
	"nvdimmc/internal/sim"
)

func newFTL(t *testing.T, blocksPerDie, pagesPerBlock int) (*sim.Kernel, *FTL) {
	t.Helper()
	k := sim.NewKernel()
	ncfg := nand.DefaultConfig()
	ncfg.InitialBadBlockPPM = 0
	ncfg.BlocksPerDie = blocksPerDie
	ncfg.PagesPerBlock = pagesPerBlock
	// Fast media so tests run quickly.
	ncfg.ProgramLatency = 10 * sim.Microsecond
	ncfg.EraseLatency = 50 * sim.Microsecond
	arr := nand.New(k, ncfg)
	f := New(k, arr, DefaultConfig())
	return k, f
}

func pageOf(tag int64) []byte {
	p := make([]byte, PageSize)
	binary.LittleEndian.PutUint64(p, uint64(tag))
	for i := 8; i < 64; i++ {
		p[i] = byte(tag)
	}
	return p
}

func TestWriteReadRoundTrip(t *testing.T) {
	k, f := newFTL(t, 16, 8)
	f.WritePage(5, pageOf(500), func(err error) {
		if err != nil {
			t.Error(err)
		}
	})
	var got []byte
	k.Run()
	f.ReadPage(5, func(data []byte, err error) {
		if err != nil {
			t.Error(err)
		}
		got = data
	})
	k.Run()
	if !bytes.Equal(got, pageOf(500)) {
		t.Fatal("round trip mismatch")
	}
}

func TestUnwrittenPageReadsZero(t *testing.T) {
	k, f := newFTL(t, 16, 8)
	var got []byte
	f.ReadPage(9, func(data []byte, err error) {
		if err != nil {
			t.Error(err)
		}
		got = data
	})
	k.Run()
	for _, b := range got {
		if b != 0 {
			t.Fatal("unwritten logical page not zero")
		}
	}
}

func TestOverwriteReturnsLatest(t *testing.T) {
	k, f := newFTL(t, 16, 8)
	for v := int64(1); v <= 5; v++ {
		f.WritePage(3, pageOf(v), nil)
	}
	k.Run()
	var got []byte
	f.ReadPage(3, func(data []byte, _ error) { got = data })
	k.Run()
	if !bytes.Equal(got, pageOf(5)) {
		t.Fatal("overwrite did not return latest data")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLPNRangeChecked(t *testing.T) {
	k, f := newFTL(t, 16, 8)
	var rerr, werr error
	f.ReadPage(f.LogicalPages(), func(_ []byte, e error) { rerr = e })
	f.WritePage(-1, pageOf(0), func(e error) { werr = e })
	k.Run()
	if rerr == nil || werr == nil {
		t.Fatal("out-of-range LPN accepted")
	}
}

func TestGCReclaimsSpace(t *testing.T) {
	// Small device: hammer one LPN far beyond raw capacity; GC must keep
	// reclaiming invalidated pages.
	k, f := newFTL(t, 8, 4)
	raw := 2 * 2 * 8 * 4 // channels*dies*blocks*pages = 128 physical pages
	errs := 0
	for i := 0; i < raw*4; i++ {
		v := int64(i)
		f.WritePage(0, pageOf(v), func(err error) {
			if err != nil {
				errs++
			}
		})
		k.Run()
	}
	if errs != 0 {
		t.Fatalf("%d writes failed (GC not reclaiming)", errs)
	}
	_, gcWrites, gcRuns, _ := f.Stats()
	if gcRuns == 0 {
		t.Fatal("GC never ran despite overwrite pressure")
	}
	// Rewriting a single page produces no valid pages to relocate, so GC
	// write amplification should be tiny here.
	if gcWrites > uint64(raw) {
		t.Fatalf("gcWrites = %d, unexpectedly high for single-page overwrite", gcWrites)
	}
	var got []byte
	f.ReadPage(0, func(d []byte, _ error) { got = d })
	k.Run()
	if !bytes.Equal(got, pageOf(int64(raw*4-1))) {
		t.Fatal("data lost across GC")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGCPreservesColdData(t *testing.T) {
	// Fill a fraction with cold data, then hammer hot pages; cold data must
	// survive relocation.
	k, f := newFTL(t, 8, 4)
	cold := int64(10)
	for lpn := int64(0); lpn < cold; lpn++ {
		f.WritePage(lpn, pageOf(1000+lpn), nil)
		k.Run()
	}
	for i := 0; i < 200; i++ {
		f.WritePage(cold+int64(i%3), pageOf(int64(i)), nil)
		k.Run()
	}
	for lpn := int64(0); lpn < cold; lpn++ {
		var got []byte
		f.ReadPage(lpn, func(d []byte, _ error) { got = d })
		k.Run()
		if !bytes.Equal(got, pageOf(1000+lpn)) {
			t.Fatalf("cold page %d corrupted by GC", lpn)
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTrim(t *testing.T) {
	k, f := newFTL(t, 16, 8)
	f.WritePage(4, pageOf(44), nil)
	k.Run()
	f.Trim(4)
	if f.IsMapped(4) {
		t.Fatal("trimmed page still mapped")
	}
	var got []byte
	f.ReadPage(4, func(d []byte, _ error) { got = d })
	k.Run()
	for _, b := range got {
		if b != 0 {
			t.Fatal("trimmed page reads non-zero")
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWearLeveling(t *testing.T) {
	// After heavy uniform overwriting, max wear should be within a small
	// factor of the average.
	k, f := newFTL(t, 8, 4)
	n := f.LogicalPages()
	rng := sim.NewRand(5)
	for i := 0; i < 600; i++ {
		f.WritePage(rng.Int63n(n), pageOf(int64(i)), nil)
		k.Run()
	}
	arr := f.arr
	total := arr.TotalErases()
	if total == 0 {
		t.Skip("no erases happened; workload too small")
	}
	avg := float64(total) / float64(arr.TotalBlocks())
	if max := float64(arr.MaxWear()); max > 4*avg+4 {
		t.Fatalf("max wear %.0f vs avg %.1f: wear-leveling ineffective", max, avg)
	}
}

func TestOverProvisioningReducesLogical(t *testing.T) {
	_, f := newFTL(t, 16, 8)
	raw := int64(2*2*16*8) * PageSize
	if f.Capacity() >= raw {
		t.Fatalf("logical capacity %d not less than raw %d", f.Capacity(), raw)
	}
	if f.Capacity() < raw*9/10-int64(PageSize) {
		t.Fatalf("logical capacity %d lost more than OP%% of raw %d", f.Capacity(), raw)
	}
}

func TestBadBlockRetry(t *testing.T) {
	// Mark a bunch of blocks bad after construction: writes must route
	// around them via grown-bad handling.
	k := sim.NewKernel()
	ncfg := nand.DefaultConfig()
	ncfg.InitialBadBlockPPM = 0
	ncfg.BlocksPerDie = 8
	ncfg.PagesPerBlock = 4
	ncfg.ProgramLatency = 10 * sim.Microsecond
	arr := nand.New(k, ncfg)
	f := New(k, arr, DefaultConfig())
	// Poison the first block of die 0 behind the FTL's back.
	arr.MarkBad(nand.PageAddr{Channel: 0, Die: 0, Block: 0})
	ok := 0
	for i := int64(0); i < 8; i++ {
		f.WritePage(i, pageOf(i), func(err error) {
			if err == nil {
				ok++
			}
		})
		k.Run()
	}
	if ok != 8 {
		t.Fatalf("only %d/8 writes survived a grown bad block", ok)
	}
	_, _, _, grown := f.Stats()
	if grown == 0 {
		t.Fatal("grown bad block not recorded")
	}
}

// Property-style: random mixed workload, then every written LPN returns its
// last value and invariants hold.
func TestRandomWorkloadConsistency(t *testing.T) {
	k, f := newFTL(t, 10, 4)
	rng := sim.NewRand(77)
	ref := make(map[int64]int64)
	n := f.LogicalPages()
	for i := 0; i < 500; i++ {
		lpn := rng.Int63n(n)
		switch rng.Intn(10) {
		case 0:
			f.Trim(lpn)
			delete(ref, lpn)
		default:
			v := int64(i)*1000 + lpn
			f.WritePage(lpn, pageOf(v), nil)
			ref[lpn] = v
		}
		k.Run()
	}
	for lpn, v := range ref {
		var got []byte
		f.ReadPage(lpn, func(d []byte, _ error) { got = d })
		k.Run()
		if !bytes.Equal(got, pageOf(v)) {
			t.Fatalf("lpn %d: stale or corrupt data", lpn)
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReadAfterPostedWrite(t *testing.T) {
	// A read issued immediately after a write (before the program finishes)
	// must observe the new data via the write buffer.
	k, f := newFTL(t, 16, 8)
	f.WritePage(7, pageOf(111), nil)
	// Do NOT run the kernel to completion: issue the read concurrently.
	var got []byte
	f.ReadPage(7, func(d []byte, _ error) { got = d })
	k.Run()
	if !bytes.Equal(got, pageOf(111)) {
		t.Fatal("read after posted write returned stale data")
	}
}

func TestWriteBufferRetires(t *testing.T) {
	k, f := newFTL(t, 16, 8)
	f.WritePage(3, pageOf(9), nil)
	k.Run()
	if len(f.writeBuf) != 0 {
		t.Fatalf("write buffer holds %d entries after quiesce", len(f.writeBuf))
	}
}

func TestConcurrentWritesSameLPNLastWins(t *testing.T) {
	// Two writes to one LPN in flight simultaneously can complete out of
	// order across dies; the LATER issue must win the mapping and the
	// earlier one must be abandoned, never resurrected.
	k, f := newFTL(t, 16, 8)
	// Issue both without draining the kernel in between.
	f.WritePage(5, pageOf(111), nil)
	f.WritePage(5, pageOf(222), nil)
	k.Run()
	var got []byte
	f.ReadPage(5, func(d []byte, _ error) { got = d })
	k.Run()
	if !bytes.Equal(got, pageOf(222)) {
		t.Fatal("later write did not win")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGCSupersededByHostWrite(t *testing.T) {
	// Heavy concurrent overwrites while GC churns: invariants must hold and
	// every LPN must return its last-issued value. This is the load that
	// exposed the in-flight supersede race (endurance run at full scale).
	k, f := newFTL(t, 8, 4)
	rng := sim.NewRand(4242)
	n := f.LogicalPages()
	last := make(map[int64]int64)
	var issued int64
	for i := 0; i < 1200; i++ {
		lpn := rng.Int63n(n)
		issued++
		v := issued*1000 + lpn
		f.WritePage(lpn, pageOf(v), nil)
		last[lpn] = v
		// Drain only occasionally so writes overlap GC and each other.
		if i%17 == 0 {
			k.Run()
		}
	}
	k.Run()
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for lpn, v := range last {
		var got []byte
		f.ReadPage(lpn, func(d []byte, _ error) { got = d })
		k.Run()
		if !bytes.Equal(got, pageOf(v)) {
			t.Fatalf("lpn %d: stale data after concurrent churn", lpn)
		}
	}
}
