package imdb

import (
	"testing"

	"nvdimmc/internal/sim"
)

// flatDev is an instantaneous functional device for engine unit tests.
type flatDev struct{ b []byte }

func (d *flatDev) Load(off int64, buf []byte, done func()) {
	copy(buf, d.b[off:])
	if done != nil {
		done()
	}
}
func (d *flatDev) Store(off int64, data []byte, done func()) {
	copy(d.b[off:], data)
	if done != nil {
		done()
	}
}

func newDB(t *testing.T, capacity int64) (*sim.Kernel, *DB) {
	t.Helper()
	k := sim.NewKernel()
	dev := &flatDev{b: make([]byte, capacity)}
	return k, New(dev, k, capacity, DefaultCost())
}

func TestCreateAndScan(t *testing.T) {
	k, db := newDB(t, 1<<20)
	var tbl *Table
	db.CreateTable("t", 1000, []string{"a", "b"}, func(row int64, col int) int64 {
		return row + int64(col)*1000000
	}, func(tt *Table, err error) {
		if err != nil {
			t.Fatal(err)
		}
		tbl = tt
	})
	k.Run()
	if tbl == nil {
		t.Fatal("create did not complete")
	}
	var sum int64
	done := false
	db.ScanAgg("t", "a", 1, 1, func(s int64, err error) {
		if err != nil {
			t.Error(err)
		}
		sum, done = s, true
	})
	k.Run()
	if !done {
		t.Fatal("scan did not complete")
	}
	want := int64(1000 * 999 / 2) // sum 0..999
	if sum != want {
		t.Fatalf("scan sum = %d, want %d", sum, want)
	}
}

func TestScanFractionAndPasses(t *testing.T) {
	k, db := newDB(t, 1<<20)
	db.CreateTable("t", 1000, []string{"a"}, func(row int64, _ int) int64 { return 1 }, func(*Table, error) {})
	k.Run()
	var sum int64
	db.ScanAgg("t", "a", 0.5, 2, func(s int64, err error) {
		if err != nil {
			t.Error(err)
		}
		sum = s
	})
	k.Run()
	if sum != 1000 { // 500 rows x 2 passes x value 1
		t.Fatalf("fractional scan sum = %d, want 1000", sum)
	}
}

func TestScanTakesComputeTime(t *testing.T) {
	k, db := newDB(t, 1<<20)
	db.CreateTable("t", 4096, []string{"a"}, func(int64, int) int64 { return 0 }, func(*Table, error) {})
	k.Run()
	start := k.Now()
	db.ScanAgg("t", "a", 1, 1, func(int64, error) {})
	k.Run()
	elapsed := k.Now().Sub(start)
	// 4096 rows x 8 B = 32 KB = 8 x 4 KB of compute at 26 us each.
	want := 8 * db.cost.ScanComputePer4K
	if elapsed < want {
		t.Fatalf("scan elapsed %v < compute floor %v", elapsed, want)
	}
}

func TestProbe(t *testing.T) {
	k, db := newDB(t, 1<<20)
	db.CreateTable("t", 5000, []string{"a"}, func(row int64, _ int) int64 { return row }, func(*Table, error) {})
	k.Run()
	doneOK := false
	db.Probe("t", "a", 200, 64, sim.NewRand(1), func(_ byte, err error) {
		if err != nil {
			t.Error(err)
		}
		doneOK = true
	})
	k.Run()
	if !doneOK {
		t.Fatal("probe did not complete")
	}
}

func TestErrorsOnMissingTableColumn(t *testing.T) {
	k, db := newDB(t, 1<<20)
	var gotErr error
	db.ScanAgg("none", "a", 1, 1, func(_ int64, err error) { gotErr = err })
	k.Run()
	if gotErr == nil {
		t.Fatal("scan of missing table accepted")
	}
	db.CreateTable("t", 10, []string{"a"}, func(int64, int) int64 { return 0 }, func(*Table, error) {})
	k.Run()
	db.Probe("t", "nope", 1, 64, sim.NewRand(1), func(_ byte, err error) { gotErr = err })
	k.Run()
	if gotErr == nil {
		t.Fatal("probe of missing column accepted")
	}
}

func TestCapacityEnforced(t *testing.T) {
	k, db := newDB(t, 1<<12)
	var gotErr error
	db.CreateTable("big", 1<<20, []string{"a"}, func(int64, int) int64 { return 0 },
		func(_ *Table, err error) { gotErr = err })
	k.Run()
	if gotErr == nil {
		t.Fatal("oversized table accepted")
	}
}

func TestHashJoin(t *testing.T) {
	k, db := newDB(t, 1<<20)
	db.CreateTable("build", 500, []string{"k"}, func(row int64, _ int) int64 { return row }, func(*Table, error) {})
	db.CreateTable("probe", 2000, []string{"v"}, func(row int64, _ int) int64 { return row * 2 }, func(*Table, error) {})
	k.Run()
	joined := false
	db.HashJoin("build", "k", "probe", "v", 0.5, sim.NewRand(3), func(err error) {
		if err != nil {
			t.Error(err)
		}
		joined = true
	})
	k.Run()
	if !joined {
		t.Fatal("join did not complete")
	}
}

func TestMixedLoadValidatesCleanly(t *testing.T) {
	k, db := newDB(t, 1<<20)
	m, err := NewMixedLoad(db, 200, 64)
	if err != nil {
		t.Fatal(err)
	}
	inited := false
	m.Init(func() { inited = true })
	k.Run()
	if !inited {
		t.Fatal("init did not complete")
	}
	finished := false
	m.Run(16, 25, func() { finished = true })
	k.Run()
	if !finished {
		t.Fatal("mixed load did not complete")
	}
	if m.Transactions != 16*25 {
		t.Fatalf("transactions = %d, want 400", m.Transactions)
	}
	if m.ValidationFailures != 0 {
		t.Fatalf("%d validation failures on a correct device", m.ValidationFailures)
	}
}

func TestMixedLoadDetectsCorruption(t *testing.T) {
	k := sim.NewKernel()
	dev := &flatDev{b: make([]byte, 1<<20)}
	db := New(dev, k, 1<<20, DefaultCost())
	m, err := NewMixedLoad(db, 50, 64)
	if err != nil {
		t.Fatal(err)
	}
	m.Init(nil)
	k.Run()
	// Corrupt a record byte behind the engine's back ("bad device").
	dev.b[m.base+30] ^= 0xFF
	m.Run(4, 200, func() {})
	k.Run()
	if m.ValidationFailures == 0 {
		t.Fatal("corruption not detected by validation")
	}
}

func TestMixedLoadCapacity(t *testing.T) {
	_, db := newDB(t, 1<<12)
	if _, err := NewMixedLoad(db, 1<<20, 64); err == nil {
		t.Fatal("oversized mixed-load table accepted")
	}
}
