package imdb

import (
	"encoding/binary"
	"fmt"

	"nvdimmc/internal/sim"
)

// MixedLoad is the stand-in for SAP's in-house mixed-load benchmark
// (§VII-B5): many concurrent users execute read-modify-write transactions
// against row records, and every transaction validates the record's checksum
// before and after. Any corruption anywhere in the memory stack — a bus
// conflict, a lost window transfer, a coherence slip — fails validation.
type MixedLoad struct {
	db  *DB
	k   Kernel
	rng *sim.Rand

	// RecordBytes is one user record (checksummed).
	RecordBytes int
	// Records is the row count of the benchmark table.
	Records int64

	base int64

	// Results.
	Transactions       uint64
	ValidationFailures uint64
}

// recordLayout: [0:8) sequence number, [8:16) payload seed,
// [16:24) checksum over the rest, rest payload derived from seed+seq.

// NewMixedLoad allocates the user table on the database's device.
func NewMixedLoad(db *DB, records int64, recordBytes int) (*MixedLoad, error) {
	if recordBytes < 32 {
		recordBytes = 64
	}
	need := records * int64(recordBytes)
	if db.alloc+need > db.capacity {
		return nil, fmt.Errorf("imdb: mixed-load table needs %d bytes, %d available", need, db.capacity-db.alloc)
	}
	m := &MixedLoad{
		db: db, k: db.k, rng: sim.NewRand(0x51ED),
		RecordBytes: recordBytes,
		Records:     records,
		base:        db.alloc,
	}
	db.alloc += need
	return m, nil
}

func (m *MixedLoad) encode(seq, seed uint64) []byte {
	rec := make([]byte, m.RecordBytes)
	binary.LittleEndian.PutUint64(rec[0:], seq)
	binary.LittleEndian.PutUint64(rec[8:], seed)
	for i := 24; i < len(rec); i++ {
		rec[i] = byte(seed>>uint(i%8*8)) ^ byte(seq) ^ byte(i)
	}
	binary.LittleEndian.PutUint64(rec[16:], m.checksum(rec))
	return rec
}

func (m *MixedLoad) checksum(rec []byte) uint64 {
	h := uint64(1469598103934665603)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= 1099511628211
	}
	for _, b := range rec[0:16] {
		mix(b)
	}
	for _, b := range rec[24:] {
		mix(b)
	}
	return h
}

func (m *MixedLoad) validate(rec []byte) bool {
	return binary.LittleEndian.Uint64(rec[16:]) == m.checksum(rec)
}

// Init writes initial records; done runs when all are durable in the device.
func (m *MixedLoad) Init(done func()) {
	var row int64
	var step func()
	step = func() {
		if row >= m.Records {
			if done != nil {
				done()
			}
			return
		}
		r := row
		row++
		m.db.dev.Store(m.base+r*int64(m.RecordBytes), m.encode(0, uint64(r)*0x9E3779B9+1), step)
	}
	step()
}

// Run executes txPerUser transactions on each of users concurrent users;
// done fires when all complete. Validation failures accumulate in
// ValidationFailures.
func (m *MixedLoad) Run(users, txPerUser int, done func()) {
	remaining := users
	for u := 0; u < users; u++ {
		rng := sim.NewRand(uint64(u)*7919 + 13)
		count := 0
		var txn func()
		txn = func() {
			if count >= txPerUser {
				remaining--
				if remaining == 0 && done != nil {
					done()
				}
				return
			}
			count++
			row := rng.Int63n(m.Records)
			off := m.base + row*int64(m.RecordBytes)
			rec := make([]byte, m.RecordBytes)
			m.db.dev.Load(off, rec, func() {
				m.Transactions++
				if !m.validate(rec) {
					m.ValidationFailures++
					m.k.Schedule(m.db.cost.TxnCompute, txn)
					return
				}
				// Modify: bump sequence, rewrite payload and checksum.
				seq := binary.LittleEndian.Uint64(rec[0:]) + 1
				seed := binary.LittleEndian.Uint64(rec[8:])
				updated := m.encode(seq, seed)
				m.k.Schedule(m.db.cost.TxnCompute, func() {
					m.db.dev.Store(off, updated, func() {
						// Read-back validation (the benchmark's point).
						check := make([]byte, m.RecordBytes)
						m.db.dev.Load(off, check, func() {
							if !m.validate(check) {
								m.ValidationFailures++
							}
							txn()
						})
					})
				})
			})
		}
		txn()
	}
}
