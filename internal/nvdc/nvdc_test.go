package nvdc

// Driver-level tests against a minimal backing: a stub iMC is impractical
// (the driver's contract is the full machine), so these tests exercise the
// pure-logic surfaces — construction validation, trim, recovery and the
// metadata shadow — through a real but tiny system assembled by hand.

import (
	"testing"

	"nvdimmc/internal/bus"
	"nvdimmc/internal/cp"
	"nvdimmc/internal/ddr4"
	"nvdimmc/internal/dram"
	"nvdimmc/internal/hostmem"
	"nvdimmc/internal/imc"
	"nvdimmc/internal/sim"
)

func newDriver(t *testing.T) (*sim.Kernel, *Driver, hostmem.Layout) {
	t.Helper()
	k := sim.NewKernel()
	dcfg := dram.DefaultConfig(ddr4.DDR4_1600)
	dcfg.Rows = 64
	dcfg.Timing.TRFC = 1250 * sim.Nanosecond
	dev := dram.New(k, dcfg)
	ch := bus.New(k, dev)
	mc := imc.New(k, ch, imc.DefaultConfig())
	layout, err := hostmem.NewLayout(dev.Capacity(), 16<<10, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(layout)
	// No NVMC behind this rig: route every miss through the fast-fill path
	// (nothing on media) so faults never need a CP ack.
	cfg.MediaWritten = func(int64) bool { return false }
	d, err := New(k, mc, nil, 4096, cfg)
	if err != nil {
		t.Fatal(err)
	}
	k.Run() // drain the metadata-init write
	return k, d, layout
}

func TestNewValidatesLayout(t *testing.T) {
	k := sim.NewKernel()
	dcfg := dram.DefaultConfig(ddr4.DDR4_1600)
	dcfg.Rows = 64
	dev := dram.New(k, dcfg)
	ch := bus.New(k, dev)
	mc := imc.New(k, ch, imc.DefaultConfig())
	// Metadata area too small for the slot count must be rejected.
	layout := hostmem.Layout{
		Size: dev.Capacity(), CPOffset: 0, CPSize: 4096,
		MetaOffset: 4096, MetaSize: 4096,
		SlotsOffset: 8192, NumSlots: 1 << 20,
	}
	if _, err := New(k, mc, nil, 4096, DefaultConfig(layout)); err == nil {
		t.Fatal("undersized metadata accepted")
	}
}

func TestMetadataShadowMatchesState(t *testing.T) {
	k, d, _ := newDriver(t)
	done := 0
	for p := int64(0); p < 5; p++ {
		d.Fault(p, p%2 == 0, func(int) { done++ })
	}
	k.RunWhile(func() bool { return done < 5 })
	k.Run() // drain metadata writes
	entries, err := cp.DecodeMeta(d.metaShadow)
	if err != nil {
		t.Fatal(err)
	}
	valid := 0
	for slot, e := range entries {
		if !e.Valid {
			continue
		}
		valid++
		lpn := int64(e.NANDPage)
		if got := d.SlotOf(lpn); got != slot {
			t.Fatalf("metadata says slot %d holds lpn %d; driver says slot %d", slot, lpn, got)
		}
		if e.Dirty != d.slots[slot].dirty {
			t.Fatalf("slot %d dirty bit mismatch", slot)
		}
	}
	if valid != 5 {
		t.Fatalf("metadata has %d valid entries, want 5", valid)
	}
}

func TestTrimReleasesSlot(t *testing.T) {
	k, d, _ := newDriver(t)
	done := false
	d.Fault(9, true, func(int) { done = true })
	k.RunWhile(func() bool { return !done })
	free := d.Stats().FreeSlots
	d.Trim(9)
	if d.IsResident(9) {
		t.Fatal("trimmed page still resident")
	}
	if d.Stats().FreeSlots != free+1 {
		t.Fatal("slot not returned to the free pool")
	}
	k.Run()
	entries, err := cp.DecodeMeta(d.metaShadow)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Valid && int64(e.NANDPage) == 9 {
			t.Fatal("metadata still maps the trimmed page")
		}
	}
	// Trim of a non-resident page is a no-op.
	d.Trim(1234)
}

func TestRecoveryRejectsWrongSlotCount(t *testing.T) {
	_, d, _ := newDriver(t)
	bad := make([]byte, cp.MetaSizeFor(3))
	if err := cp.EncodeMeta(bad, make([]cp.MetaEntry, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.RecoverFromMetadata(bad); err == nil {
		t.Fatal("mismatched slot count accepted")
	}
}

func TestRecoveryRoundTrip(t *testing.T) {
	k, d, _ := newDriver(t)
	done := 0
	for p := int64(0); p < 4; p++ {
		d.Fault(p, false, func(int) { done++ })
	}
	k.RunWhile(func() bool { return done < 4 })
	k.Run()
	snapshot := make([]byte, len(d.metaShadow))
	copy(snapshot, d.metaShadow)
	n, err := d.RecoverFromMetadata(snapshot)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("recovered %d, want 4", n)
	}
	for p := int64(0); p < 4; p++ {
		if !d.IsResident(p) {
			t.Fatalf("page %d lost in recovery", p)
		}
	}
}

func TestSerializeOrdersSections(t *testing.T) {
	k, d, _ := newDriver(t)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		d.Serialize(10*sim.Microsecond, func() { order = append(order, i) })
	}
	k.Run()
	if len(order) != 3 || order[0] != 0 || order[2] != 2 {
		t.Fatalf("serialized sections out of order: %v", order)
	}
	// Each held the lock 10us: total >= 30us of simulated time.
	if k.Now() < sim.Time(30*sim.Microsecond) {
		t.Fatalf("lock not actually held: clock at %v", k.Now())
	}
}

func TestFaultRangePanics(t *testing.T) {
	_, d, _ := newDriver(t)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range fault accepted")
		}
	}()
	d.Fault(1<<40, false, func(int) {})
}

func TestHypotheticalModeStall(t *testing.T) {
	// The Fig. 12 mode: misses wait the exposed media stall, no CP traffic.
	k := sim.NewKernel()
	dcfg := dram.DefaultConfig(ddr4.DDR4_1600)
	dcfg.Rows = 64
	dev := dram.New(k, dcfg)
	ch := bus.New(k, dev)
	mc := imc.New(k, ch, imc.DefaultConfig())
	layout, err := hostmem.NewLayout(dev.Capacity(), 16<<10, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(layout)
	cfg.Hypothetical = true
	cfg.TD = 7800 * sim.Nanosecond
	d, err := New(k, mc, nil, 4096, cfg)
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	start := k.Now()
	done := false
	d.Fault(3, false, func(int) { done = true })
	k.RunWhile(func() bool { return !done })
	lat := k.Now().Sub(start)
	// Exposed stall = 3 * tD * (1-0.7) = 7.02us, plus MapCost.
	wantStall := sim.Duration(float64(cfg.TDWaits) * float64(cfg.TD) * (1 - cfg.TDOverlap))
	if lat < wantStall || lat > wantStall+10*sim.Microsecond {
		t.Fatalf("hypothetical miss latency %v, want >= stall %v", lat, wantStall)
	}
	if d.Stats().Cachefills != 0 || d.Stats().AckPolls != 0 {
		t.Fatal("hypothetical mode touched the CP path")
	}
}

func TestDirtyTrackingSkipsCleanWB(t *testing.T) {
	// With TrackDirty, evicting a never-written slot needs no writeback:
	// the miss path goes straight to the (fast or CP) fill.
	k, d, _ := newDriver(t)
	// Fill ALL slots with clean faults.
	n := len(d.slots)
	done := 0
	for p := 0; p < n; p++ {
		d.Fault(int64(p), false, func(int) { done++ })
	}
	k.RunWhile(func() bool { return done < n })
	if d.Stats().FreeSlots != 0 {
		t.Fatalf("cache not full: %d free", d.Stats().FreeSlots)
	}
	// Flip dirty tracking on for the eviction decision: a clean victim must
	// not need a writeback, a dirty one must (white-box via claimSlot — the
	// full CP round trip is covered by the core integration tests).
	d.cfg.TrackDirty = true
	_, victimLPN, needWB := d.claimSlot()
	if victimLPN == noLPN {
		t.Fatal("expected an eviction from a full cache")
	}
	if needWB {
		t.Fatal("clean victim flagged for writeback under TrackDirty")
	}
	// Dirty a resident page; its eviction must demand a writeback.
	dirtyLPN := int64(0)
	if dirtyLPN == victimLPN {
		dirtyLPN = 1
	}
	d.markDirty(d.mapping[dirtyLPN])
	for {
		_, v, wb := d.claimSlot()
		if v == noLPN {
			t.Fatal("ran out of victims before the dirty page")
		}
		if v == dirtyLPN {
			if !wb {
				t.Fatal("dirty victim not flagged for writeback")
			}
			break
		}
		if wb {
			t.Fatalf("clean victim %d flagged for writeback", v)
		}
	}
	k.Run()
}

func TestAccessorsAndDirtyMark(t *testing.T) {
	k, d, layout := newDriver(t)
	if d.CapacityPages() != 4096 {
		t.Fatalf("capacity = %d", d.CapacityPages())
	}
	if d.Config().Layout.NumSlots != layout.NumSlots {
		t.Fatal("config accessor mismatch")
	}
	done := false
	d.Fault(5, false, func(int) { done = true })
	k.RunWhile(func() bool { return !done })
	slot := d.SlotOf(5)
	if d.slots[slot].dirty {
		t.Fatal("clean fault marked dirty")
	}
	// A write hit marks the slot (and metadata) dirty.
	d.Fault(5, true, func(int) {})
	k.Run()
	if !d.slots[slot].dirty {
		t.Fatal("write hit did not mark dirty")
	}
	entries, err := cp.DecodeMeta(d.metaShadow)
	if err != nil {
		t.Fatal(err)
	}
	if !entries[slot].Dirty {
		t.Fatal("metadata dirty bit not set")
	}
}
