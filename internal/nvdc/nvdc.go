// Package nvdc is the NVDIMM-C device driver (§IV-B/§IV-C): the software
// half of the co-design. It exposes the Z-NAND capacity as a block device
// whose blocks are served from the reserved DRAM region, manages that region
// as a fully associative 4 KB-slot cache (LRC by default), orchestrates
// cachefill and writeback through the CP area, and maintains CPU-cache
// coherence around the NVMC's invisible tRFC-window transfers (§V-B) with
// explicit clflush/sfence.
//
// All driver work is expressed against the simulated machine: CP commands
// are iMC bus writes into the CP area, acks are polled with uncached bus
// reads, and CPU-side costs (victim search, PTE and metadata updates, cache
// flushes) are charged as simulated time on the driver lock so that
// multi-thread contention behaves like the real lock would.
package nvdc

import (
	"errors"
	"fmt"
	"sort"

	"nvdimmc/internal/cp"
	"nvdimmc/internal/cpucache"
	"nvdimmc/internal/hostmem"
	"nvdimmc/internal/imc"
	"nvdimmc/internal/metrics"
	"nvdimmc/internal/sim"
)

// PageSize is the driver's management granularity (§IV-B: mappings of
// Z-NAND and DRAM pages are kept at 4 KB).
const PageSize = 4096

// Typed failures the hardened driver surfaces to callers.
var (
	// ErrReadOnly: the writeback path failed hard, so the driver refuses
	// writes (and any miss that would need an eviction writeback) to keep
	// already-acked data safe in DRAM.
	ErrReadOnly = errors.New("nvdc: device is read-only")
	// ErrMediaRead: a cachefill kept failing after retries (uncorrectable
	// NAND read).
	ErrMediaRead = errors.New("nvdc: media read failed")
)

// CPTimeoutError reports a CP command whose ack never validated within the
// configured simulated-time deadline, across all re-issues.
type CPTimeoutError struct {
	Opcode   cp.Opcode
	Slot     int
	Attempts int
}

func (e *CPTimeoutError) Error() string {
	return fmt.Sprintf("nvdc: CP %v on mailbox slot %d: no valid ack after %d attempts",
		e.Opcode, e.Slot, e.Attempts)
}

// Mode is the driver's degradation state. Transitions are forward-only:
// Healthy -> Degraded -> ReadOnly.
type Mode int

const (
	// ModeHealthy: normal cached operation.
	ModeHealthy Mode = iota
	// ModeDegraded: the cache is suspect (a slot was quarantined after a
	// hard cachefill failure); the driver still serves reads and writes
	// but writes each acked store through to the NVM media immediately so
	// the DRAM cache never holds the only copy.
	ModeDegraded
	// ModeReadOnly: the writeback path failed hard; dirty data cannot be
	// persisted, so writes are refused. Resident pages stay readable and
	// misses are served only from free slots (no evictions).
	ModeReadOnly
)

func (m Mode) String() string {
	switch m {
	case ModeHealthy:
		return "healthy"
	case ModeDegraded:
		return "degraded"
	case ModeReadOnly:
		return "read-only"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Error-path counter names (metrics.Counters keys).
const (
	CtrAckTimeout      = "cp.ack.timeout"
	CtrAckChecksumBad  = "cp.ack.checksum_bad"
	CtrCPReissue       = "cp.reissue"
	CtrCachefillRetry  = "cachefill.retry"
	CtrCachefillFail   = "cachefill.hard_fail"
	CtrWritebackFail   = "writeback.hard_fail"
	CtrSlotQuarantined = "slot.quarantined"
	CtrModeDegraded    = "mode.degraded"
	CtrModeReadOnly    = "mode.readonly"
	CtrWriteThrough    = "write.through"
	CtrFaultFailed     = "fault.failed"
)

// ErrorCounterNames lists the counters that may only move on a fault path.
// CtrWriteThrough is deliberately absent: it also counts legitimate msync
// write-throughs, so a healthy no-fault run can have it nonzero.
func ErrorCounterNames() []string {
	return []string{
		CtrAckTimeout, CtrAckChecksumBad, CtrCPReissue,
		CtrCachefillRetry, CtrCachefillFail, CtrWritebackFail,
		CtrSlotQuarantined, CtrModeDegraded, CtrModeReadOnly,
		CtrFaultFailed,
	}
}

// Config parameterizes the driver.
type Config struct {
	Layout hostmem.Layout
	// Policy selects the victim replacement algorithm (PoC: LRC).
	Policy Policy
	// TrackDirty enables dirty bits so clean victims skip writeback. The
	// PoC does not track dirtiness: every eviction writes back, which is
	// why pure-read misses still pay the writeback (§VII-B2).
	TrackDirty bool
	// CombineWBCF issues eviction writeback + cachefill as one OpCombined
	// command (future work §VII-C item 4).
	CombineWBCF bool

	// UnsafeNoFlush disables the §V-B clflush+sfence discipline before
	// writebacks and the invalidate after cachefills. FOR THE COHERENCE
	// ABLATION ONLY: with a CPU cache in the path, evictions then write
	// stale lines to NVM and fills are shadowed by stale lines — the data
	// corruption the paper's driver exists to prevent.
	UnsafeNoFlush bool

	// CPQueueDepth is the number of CP mailbox slots the driver pipelines
	// across (1 on the PoC; §VII-C item 2 needs BOTH device slots and this
	// driver-side dispatch to help). Must not exceed the NVMC's
	// CommandDepth.
	CPQueueDepth int

	// CPU-side cost model.
	MapCost         sim.Duration // victim search + PTE + metadata update per miss
	FlushCost4K     sim.Duration // clflush loop over one 4 KB slot + sfence
	CPWriteCost     sim.Duration // build/store/flush the CP cacheline
	AckPollInterval sim.Duration // delay between ack polls

	// AckTimeout is the hard simulated-time deadline for one CP command
	// attempt: if no checksum-valid ack carrying the expected phase bit
	// appears within this window, the driver re-issues the command with a
	// freshly toggled phase bit. The NVMC treats the re-issue as a new
	// command; cachefill and writeback are idempotent page moves, so
	// re-execution after a lost or corrupt ack is safe. Zero selects the
	// default (1.5 ms — several times the worst healthy command latency).
	AckTimeout sim.Duration
	// CPRetries bounds total issues (first + re-issues) per CP command
	// before the driver gives up with a CPTimeoutError. Zero -> default 4.
	CPRetries int
	// CachefillRetries bounds whole-command retries after the device acks
	// a cachefill with an error status (transient NAND read upsets clear
	// on a reread). Zero -> default 3.
	CachefillRetries int

	// MediaWritten reports whether a block has data on the NVM media (the
	// filesystem's written/unwritten-extent knowledge; core wires it to the
	// FTL mapping). Faults on unwritten blocks taken from the FREE slot
	// pool skip the CP cachefill and zero the slot locally — without this
	// fast path the Fig. 7 free-slot phase could never reach the SSD-bound
	// 518 MB/s (a CP cachefill alone caps at ~175 MB/s). The PoC's eviction
	// path still pays the full writeback+cachefill pair (§VII-B1).
	MediaWritten func(lpn int64) bool

	// Hypothetical device mode (§VII-D1 / Fig. 12): the CP path is bypassed
	// and each miss step waits a programmable delay tD instead of talking
	// to the FPGA. Data is NOT moved (the hypothetical PoC's FPGA "does
	// nothing"), so this mode is for performance experiments only.
	Hypothetical bool
	TD           sim.Duration
	// TDWaits is the nominal number of refresh-window delays per miss
	// (3 per §V-A: poll, data, status).
	TDWaits int
	// TDOverlap is the fraction of each wait hidden by pipelining with the
	// driver's own mapping work and the ack-free hypothetical path. The
	// exposed stall per miss is TDWaits*TD*(1-TDOverlap). Calibrated so the
	// single-thread Fig. 12 bandwidths land near the paper's.
	TDOverlap float64
}

// DefaultConfig returns the PoC-like driver configuration for the layout.
func DefaultConfig(layout hostmem.Layout) Config {
	return Config{
		Layout:           layout,
		Policy:           PolicyLRC,
		TrackDirty:       false,
		MapCost:          1200 * sim.Nanosecond,
		FlushCost4K:      2 * sim.Microsecond,
		CPWriteCost:      300 * sim.Nanosecond,
		AckPollInterval:  600 * sim.Nanosecond,
		AckTimeout:       1500 * sim.Microsecond,
		CPRetries:        4,
		CachefillRetries: 3,
		TDWaits:          3,
		TDOverlap:        0.7,
	}
}

// Stats aggregates driver behaviour.
type Stats struct {
	Hits, Misses    uint64
	Evictions       uint64
	Writebacks      uint64
	Cachefills      uint64
	CombinedCmds    uint64
	AckPolls        uint64
	CoalescedFaults uint64 // faults that piggybacked on an in-flight miss
	FastFills       uint64 // free-slot fills of unwritten blocks (no CP)
	FreeSlots       int
	ResidentPages   int

	// Robustness snapshot (the per-event accounting lives in Counters()).
	Mode             Mode
	SlotsQuarantined int
}

type slotState struct {
	lpn   int64 // -1 if free
	dirty bool
	// gen counts write faults on the slot; FlushLPN uses it to avoid
	// clearing a dirty bit set by a store that raced the flush.
	gen uint64
}

const noLPN = int64(-1)

type cpRequest struct {
	cmd  cp.Command
	done func(status cp.Status, err error)
}

type cpSlot struct {
	phase bool
	busy  bool
}

// Driver is the nvdc driver instance for one NVDIMM-C module.
type Driver struct {
	k     *sim.Kernel
	mc    *imc.Controller
	cache *cpucache.Cache // optional functional CPU cache
	cfg   Config

	slots   []slotState
	free    []int
	mapping map[int64]int // block lpn -> slot
	rep     replacer

	inflight map[int64][]func(slot int, err error)

	// Degradation state (forward-only; see Mode).
	mode        Mode
	quarantined []int

	// halted: the host lost power. Pending ack polls, CP issues and new
	// faults become silent no-ops — after the failure instant no driver code
	// runs, so nothing may count errors or complete callbacks. Cleared by
	// RecoverFromMetadata (the reboot).
	halted bool

	// OnModeChange, if set, observes degradation transitions (core wires a
	// logger/metric; tests assert on it).
	OnModeChange func(to Mode, reason string)

	// errs counts every error, retry and degradation event by name.
	errs *metrics.Counters

	// CP mailbox slots: the PoC has one; with CPQueueDepth > 1 the driver
	// round-robins commands across slots and polls their acks concurrently.
	cpSlots []cpSlot
	cpQueue []cpRequest

	// lock serializes the driver's mapping-manipulation critical sections.
	lock *sim.Resource

	// metaShadow is the driver's authoritative copy of the metadata area.
	metaShadow  []byte
	metaEntries []cp.MetaEntry

	capacityPages int64

	stats Stats
}

// New builds a driver over the iMC-attached module. capacityPages is the
// block device size in 4 KB pages (the FTL's logical capacity). cache may be
// nil when only the timing path is exercised.
func New(k *sim.Kernel, mc *imc.Controller, cache *cpucache.Cache, capacityPages int64, cfg Config) (*Driver, error) {
	if err := cfg.Layout.Validate(); err != nil {
		return nil, err
	}
	if cp.MaxMetaEntries(cfg.Layout.MetaSize) < cfg.Layout.NumSlots {
		return nil, fmt.Errorf("nvdc: metadata area (%d B) cannot index %d slots",
			cfg.Layout.MetaSize, cfg.Layout.NumSlots)
	}
	if cfg.TDWaits <= 0 {
		cfg.TDWaits = 3
	}
	if cfg.CPQueueDepth < 1 {
		cfg.CPQueueDepth = 1
	}
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = 1500 * sim.Microsecond
	}
	if cfg.CPRetries < 1 {
		cfg.CPRetries = 4
	}
	if cfg.CachefillRetries < 1 {
		cfg.CachefillRetries = 3
	}
	d := &Driver{
		k:             k,
		mc:            mc,
		cache:         cache,
		cfg:           cfg,
		slots:         make([]slotState, cfg.Layout.NumSlots),
		mapping:       make(map[int64]int),
		rep:           newReplacer(cfg.Policy, cfg.Layout.NumSlots),
		inflight:      make(map[int64][]func(int, error)),
		errs:          metrics.NewCounters(),
		lock:          sim.NewResource(k, "nvdc-lock"),
		cpSlots:       make([]cpSlot, cfg.CPQueueDepth),
		metaShadow:    make([]byte, cfg.Layout.MetaSize),
		metaEntries:   make([]cp.MetaEntry, cfg.Layout.NumSlots),
		capacityPages: capacityPages,
	}
	for i := range d.slots {
		d.slots[i].lpn = noLPN
		d.free = append(d.free, i)
	}
	if err := cp.EncodeMeta(d.metaShadow, d.metaEntries); err != nil {
		return nil, err
	}
	// Initialize the metadata area in DRAM so a power failure before any
	// mapping change finds a valid (empty) table.
	mc.Write(cfg.Layout.MetaOffset, d.metaShadow, nil)
	return d, nil
}

// CapacityPages returns the block device size in 4 KB pages.
func (d *Driver) CapacityPages() int64 { return d.capacityPages }

// Stats returns a snapshot of the driver counters.
func (d *Driver) Stats() Stats {
	s := d.stats
	s.FreeSlots = len(d.free)
	s.ResidentPages = len(d.mapping)
	s.Mode = d.mode
	s.SlotsQuarantined = len(d.quarantined)
	return s
}

// Counters exposes the error/retry/degradation event counters.
func (d *Driver) Counters() *metrics.Counters { return d.errs }

// Health is an exported point-in-time snapshot of the driver's degradation
// state, shaped for layered health checks: the socket pool's member probes
// fold it — together with the conformance auditor's violation count — into
// the pool-level member state machine without reaching into driver
// internals.
type Health struct {
	// Mode is the Healthy -> Degraded -> ReadOnly lattice position.
	Mode Mode
	// SlotsQuarantined counts DRAM cache slots retired after hard failures.
	SlotsQuarantined int
	// HardFailures counts unrecoverable command failures (cachefill or
	// writeback exhausted its retries): any nonzero value means the driver
	// has degraded and some data path is gone.
	HardFailures uint64
	// Transients counts recovered error events (ack timeouts, CP re-issues,
	// checksum rejects, cachefill read-retries): noise that a health prober
	// treats as suspicion, not failure.
	Transients uint64
	// ErrorEvents is the sum over every error-path counter
	// (ErrorCounterNames); deltas between probes measure error rate.
	ErrorEvents uint64
}

// Health snapshots the driver's degradation state.
func (d *Driver) Health() Health {
	return Health{
		Mode:             d.mode,
		SlotsQuarantined: len(d.quarantined),
		HardFailures:     d.errs.Sum(CtrCachefillFail, CtrWritebackFail),
		Transients:       d.errs.Sum(CtrAckTimeout, CtrAckChecksumBad, CtrCPReissue, CtrCachefillRetry),
		ErrorEvents:      d.errs.Sum(ErrorCounterNames()...),
	}
}

// ResidentPage describes one DRAM-cache-resident page: what a rebuild scan
// must replay onto a replacement module to evacuate this one.
type ResidentPage struct {
	LPN   int64
	Dirty bool
}

// Resident returns the resident pages in ascending LPN order. The mapping is
// map-backed, so the sort is what makes evacuation scans deterministic — the
// pool's spare-DIMM rebuild iterates this slice in order and replays it
// through the spare's write path.
func (d *Driver) Resident() []ResidentPage {
	out := make([]ResidentPage, 0, len(d.mapping))
	for lpn, slot := range d.mapping {
		out = append(out, ResidentPage{LPN: lpn, Dirty: d.slots[slot].dirty})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].LPN < out[j].LPN })
	return out
}

// Mode reports the driver's degradation state.
func (d *Driver) Mode() Mode { return d.mode }

// Quarantined returns the slots retired after hard cachefill failures.
func (d *Driver) Quarantined() []int { return append([]int(nil), d.quarantined...) }

// Halt freezes the driver at a power-failure instant: in-flight ack polls
// and CP issues stop without counting timeouts against a dead host, and new
// faults are dropped (their callers no longer exist). RecoverFromMetadata
// lifts the halt — the reboot.
func (d *Driver) Halt() { d.halted = true }

// degrade moves the driver forward in the degradation lattice; backward
// transitions are ignored (a ReadOnly device never self-heals — recovery is
// an operator action through a fresh Driver).
func (d *Driver) degrade(to Mode, reason string) {
	if to <= d.mode {
		return
	}
	d.mode = to
	switch to {
	case ModeDegraded:
		d.errs.Inc(CtrModeDegraded)
	case ModeReadOnly:
		d.errs.Inc(CtrModeReadOnly)
	}
	if d.OnModeChange != nil {
		d.OnModeChange(to, reason)
	}
}

// quarantine retires a DRAM cache slot: it never returns to the free pool
// and never hosts a mapping again. The driver cannot tell a failing DRAM
// slot from a failing transfer path, so it conservatively removes the slot
// that was involved in a hard failure from circulation.
func (d *Driver) quarantine(slot int) {
	d.quarantined = append(d.quarantined, slot)
	d.errs.Inc(CtrSlotQuarantined)
	d.metaEntries[slot] = cp.MetaEntry{}
	d.writeMetaEntry(slot)
}

// failInflight rejects every waiter coalesced on lpn's miss.
func (d *Driver) failInflight(lpn int64, err error) {
	waiters := d.inflight[lpn]
	delete(d.inflight, lpn)
	d.errs.Inc(CtrFaultFailed)
	for _, w := range waiters {
		w(-1, err)
	}
}

// Config returns the driver configuration.
func (d *Driver) Config() Config { return d.cfg }

// SlotOf reports the slot caching lpn, or -1.
func (d *Driver) SlotOf(lpn int64) int {
	if s, ok := d.mapping[lpn]; ok {
		return s
	}
	return -1
}

// IsResident reports whether lpn is in the DRAM cache.
func (d *Driver) IsResident(lpn int64) bool { return d.SlotOf(lpn) >= 0 }

// Serialize runs fn after holding the driver's device lock for hold time —
// the per-op radix-tree lookup and coherence bookkeeping every fsdax access
// performs. Miss-path critical sections contend on the same lock.
func (d *Driver) Serialize(hold sim.Duration, fn func()) {
	d.lock.Acquire(hold, func(start sim.Time) {
		d.k.ScheduleAt(start.Add(hold), fn)
	})
}

// --- Fault path -----------------------------------------------------------

// Fault is the DAX page-fault path (Fig. 6): it guarantees lpn is resident
// and calls done with its slot. write marks the slot dirty. Concurrent
// faults on the same lpn coalesce onto one miss. Fault keeps the legacy
// error-free signature for callers that run without fault injection; any
// driver error (impossible in a healthy, fault-free system) panics. Code
// that must survive injected failures uses FaultE.
func (d *Driver) Fault(lpn int64, write bool, done func(slot int)) {
	d.FaultE(lpn, write, func(slot int, err error) {
		if err != nil {
			panic(fmt.Sprintf("nvdc: fault lpn %d: %v", lpn, err))
		}
		done(slot)
	})
}

// FaultE is the error-carrying fault path: done receives the resident slot,
// or -1 and the reason residency could not be established (read-only mode,
// CP transport exhaustion, uncorrectable media reads).
func (d *Driver) FaultE(lpn int64, write bool, done func(slot int, err error)) {
	if lpn < 0 || lpn >= d.capacityPages {
		panic(fmt.Sprintf("nvdc: fault lpn %d out of device range %d", lpn, d.capacityPages))
	}
	if d.halted {
		return
	}
	if write && d.mode == ModeReadOnly {
		d.errs.Inc(CtrFaultFailed)
		done(-1, fmt.Errorf("write fault on lpn %d: %w", lpn, ErrReadOnly))
		return
	}
	if slot, ok := d.mapping[lpn]; ok {
		d.stats.Hits++
		d.rep.Touch(slot)
		if write {
			d.markDirty(slot)
		}
		done(slot, nil)
		return
	}
	wake := func(slot int, err error) {
		if err != nil {
			done(-1, err)
			return
		}
		if write {
			d.markDirty(slot)
		}
		done(slot, nil)
	}
	if waiters, ok := d.inflight[lpn]; ok {
		d.stats.CoalescedFaults++
		d.inflight[lpn] = append(waiters, wake)
		return
	}
	d.stats.Misses++
	d.inflight[lpn] = []func(int, error){wake}
	d.missPath(lpn)
}

func (d *Driver) markDirty(slot int) {
	d.slots[slot].gen++
	if !d.slots[slot].dirty {
		d.slots[slot].dirty = true
		d.metaEntries[slot].Dirty = true
		d.writeMetaEntry(slot)
	}
}

// missPath runs the cachefill (and possibly eviction writeback) for lpn.
func (d *Driver) missPath(lpn int64) {
	// Step 1 (under the driver lock): claim a slot, evicting if needed.
	d.lock.Acquire(d.cfg.MapCost/2, func(start sim.Time) {
		d.k.ScheduleAt(start.Add(d.cfg.MapCost/2), func() {
			// Read-only mode never evicts: an eviction would either need the
			// broken writeback path or discard a page the driver can no
			// longer re-fetch safely. Misses are served from free slots only.
			if d.mode == ModeReadOnly && len(d.free) == 0 {
				d.failInflight(lpn, fmt.Errorf("miss on lpn %d needs an eviction: %w", lpn, ErrReadOnly))
				return
			}
			slot, victimLPN, needWB := d.claimSlot()
			// Fast path: a free slot for a block with nothing on the media
			// needs no CP round trip — zero the slot locally and map it.
			// Without this path the Fig. 7 free-slot phase could never be
			// SSD-bound (a CP cachefill alone caps at ~175 MB/s).
			if victimLPN == noLPN && !needWB && !d.cfg.Hypothetical &&
				d.cfg.MediaWritten != nil && !d.cfg.MediaWritten(lpn) {
				d.stats.FastFills++
				d.mc.Write(d.cfg.Layout.SlotAddr(slot), make([]byte, PageSize), func() {
					if d.cache != nil {
						d.cache.Invalidate(d.cfg.Layout.SlotAddr(slot), PageSize)
					}
					d.install(lpn, slot)
				})
				return
			}
			d.transfer(lpn, slot, victimLPN, needWB)
		})
	})
}

// claimSlot picks the slot that will receive lpn's data. It returns the
// victim's lpn (noLPN if the slot was free) and whether a writeback is
// needed.
func (d *Driver) claimSlot() (slot int, victimLPN int64, needWB bool) {
	if len(d.free) > 0 {
		slot = d.free[len(d.free)-1]
		d.free = d.free[:len(d.free)-1]
		return slot, noLPN, false
	}
	slot = d.rep.Victim()
	if slot < 0 {
		panic("nvdc: no free slot and no victim")
	}
	d.stats.Evictions++
	victimLPN = d.slots[slot].lpn
	// Unmap immediately: concurrent access to the victim page becomes a
	// miss that queues behind this slot transition via the CP mailbox.
	delete(d.mapping, victimLPN)
	needWB = !d.cfg.TrackDirty || d.slots[slot].dirty
	d.slots[slot].lpn = noLPN
	// Crash consistency: while the eviction writeback is still in flight the
	// victim's bytes exist ONLY in this DRAM slot, and the power-fail flush
	// persists exactly what the metadata table says is valid and dirty. So
	// the entry stays {victim, Valid, Dirty} until the writeback is acked
	// Done (transfer invalidates it just before the cachefill overwrites the
	// slot). Clean victims — and the combined-command mode, whose single
	// opcode gives no point between writeback and fill to flip the entry —
	// invalidate up front as before.
	if !needWB || d.cfg.CombineWBCF {
		d.metaEntries[slot].Valid = false
		d.writeMetaEntry(slot)
	}
	return slot, victimLPN, needWB
}

// transfer performs writeback (if needed) then cachefill, then installs the
// mapping.
func (d *Driver) transfer(lpn int64, slot int, victimLPN int64, needWB bool) {
	finish := func() {
		// CPU cachelines over the slot hold pre-fill data: invalidate so
		// loads observe the NVMC's fresh bytes (§V-B).
		if d.cache != nil && !d.cfg.UnsafeNoFlush {
			d.cache.Invalidate(d.cfg.Layout.SlotAddr(slot), PageSize)
		}
		d.install(lpn, slot)
	}

	if d.cfg.Hypothetical {
		// Fig. 12 mode: no FPGA communication; the driver waits TDWaits
		// programmable delays per miss (§VII-D1), of which TDOverlap is
		// hidden behind the driver's own mapping work and the ack-free
		// pipeline — the single-thread bandwidths the paper reports imply
		// an exposed stall of roughly one tD per access (see the Fig. 12
		// calibration note in EXPERIMENTS.md).
		stall := sim.Duration(float64(d.cfg.TDWaits) * float64(d.cfg.TD) * (1 - d.cfg.TDOverlap))
		d.k.Schedule(stall, finish)
		return
	}

	// Cachefill with bounded read-retry: an error ack means the NAND read
	// came back uncorrectable; transient upsets (injected or real) clear on
	// a reread, so the command is re-issued whole. Exhausting the retries
	// is a hard media failure: the slot is quarantined and the driver
	// degrades to write-through.
	var attemptCachefill func(attempt int)
	attemptCachefill = func(attempt int) {
		d.stats.Cachefills++
		d.sendCP(cp.Command{Opcode: cp.OpCachefill, DRAMSlot: uint32(slot), NANDPage: uint32(lpn)},
			func(st cp.Status, err error) {
				if err == nil && st == cp.StatusDone {
					finish()
					return
				}
				if err == nil {
					err = fmt.Errorf("device error status on lpn %d: %w", lpn, ErrMediaRead)
				}
				if attempt+1 < d.cfg.CachefillRetries {
					d.errs.Inc(CtrCachefillRetry)
					attemptCachefill(attempt + 1)
					return
				}
				d.cachefillFailed(lpn, slot, err)
			})
	}
	cachefill := func() { attemptCachefill(0) }

	if !needWB {
		cachefill()
		return
	}

	// Coherence discipline before the NVMC reads the slot: flush + fence.
	flushDone := func() {
		if d.cfg.CombineWBCF {
			d.stats.CombinedCmds++
			d.sendCP(cp.Command{
				Opcode: cp.OpCombined,
				// Primary pair = cachefill, secondary = writeback (§cp).
				DRAMSlot: uint32(slot), NANDPage: uint32(lpn),
				DRAMSlot2: uint32(slot), NANDPage2: uint32(victimLPN),
			}, func(st cp.Status, err error) {
				if err == nil && st == cp.StatusDone {
					finish()
					return
				}
				if err == nil {
					err = fmt.Errorf("nvdc: combined command error status")
				}
				// The writeback half is the dangerous one: treat any
				// combined failure as a writeback failure.
				d.writebackFailed(lpn, slot, victimLPN, err)
			})
			return
		}
		d.stats.Writebacks++
		d.sendCP(cp.Command{Opcode: cp.OpWriteback, DRAMSlot: uint32(slot), NANDPage: uint32(victimLPN)},
			func(st cp.Status, err error) {
				if err == nil && st == cp.StatusDone {
					// The victim is on the media: drop its metadata entry
					// BEFORE the cachefill replaces the slot's bytes, or a
					// power failure in between would flush the new page's
					// data over the victim's NAND page. (With the default
					// CPQueueDepth of 1 a re-fault on the victim queues
					// behind this transition, so no second Valid entry for
					// the same NAND page can appear meanwhile.)
					d.metaEntries[slot] = cp.MetaEntry{}
					d.writeMetaEntry(slot)
					cachefill()
					return
				}
				if err == nil {
					err = fmt.Errorf("nvdc: writeback error status")
				}
				d.writebackFailed(lpn, slot, victimLPN, err)
			})
	}
	if d.cache != nil && !d.cfg.UnsafeNoFlush {
		if err := d.cache.Clflush(d.cfg.Layout.SlotAddr(slot), PageSize); err != nil {
			panic(fmt.Sprintf("nvdc: clflush: %v", err))
		}
		d.cache.SFence()
	}
	d.k.Schedule(d.cfg.FlushCost4K, flushDone)
}

// cachefillFailed ends a miss whose fill the device could not serve even
// after retries: the slot involved is retired, the driver degrades to
// write-through, and every coalesced waiter gets the error.
func (d *Driver) cachefillFailed(lpn int64, slot int, err error) {
	d.errs.Inc(CtrCachefillFail)
	d.quarantine(slot)
	d.degrade(ModeDegraded, fmt.Sprintf("cachefill of lpn %d failed hard (slot %d quarantined)", lpn, slot))
	d.failInflight(lpn, fmt.Errorf("nvdc: cachefill of lpn %d: %w", lpn, err))
}

// writebackFailed handles a hard eviction-writeback failure. The failed
// writeback never mutated the DRAM slot, so the dirty victim's bytes are
// intact: the victim mapping is restored under the lock (no acked data is
// lost) and the driver goes read-only — it can no longer promise that a
// future eviction could persist dirty data.
func (d *Driver) writebackFailed(lpn int64, slot int, victimLPN int64, err error) {
	d.errs.Inc(CtrWritebackFail)
	d.lock.Acquire(d.cfg.MapCost/2, func(start sim.Time) {
		d.k.ScheduleAt(start.Add(d.cfg.MapCost/2), func() {
			d.mapping[victimLPN] = slot
			d.slots[slot] = slotState{lpn: victimLPN, dirty: true}
			d.rep.Insert(slot)
			d.metaEntries[slot] = cp.MetaEntry{NANDPage: uint32(victimLPN), Valid: true, Dirty: true}
			d.writeMetaEntry(slot)
			d.degrade(ModeReadOnly, fmt.Sprintf("writeback of victim lpn %d failed hard", victimLPN))
			d.failInflight(lpn, fmt.Errorf("nvdc: writeback of victim lpn %d: %w", victimLPN, err))
		})
	})
}

// install maps lpn to slot under the driver lock: mapping + PTE + metadata
// update, then wake the fault waiters.
func (d *Driver) install(lpn int64, slot int) {
	d.lock.Acquire(d.cfg.MapCost/2, func(start sim.Time) {
		d.k.ScheduleAt(start.Add(d.cfg.MapCost/2), func() {
			d.mapping[lpn] = slot
			d.slots[slot] = slotState{lpn: lpn, dirty: false}
			d.rep.Insert(slot)
			d.metaEntries[slot] = cp.MetaEntry{NANDPage: uint32(lpn), Valid: true}
			d.writeMetaEntry(slot)
			waiters := d.inflight[lpn]
			delete(d.inflight, lpn)
			for _, w := range waiters {
				w(slot, nil)
			}
		})
	})
}

// writeMetaEntry updates slot's entry and the header in the DRAM metadata
// area (two small bus writes; the CPU cost is folded into MapCost).
func (d *Driver) writeMetaEntry(slot int) {
	if err := cp.EncodeMetaEntry(d.metaShadow, slot, d.metaEntries[slot]); err != nil {
		panic(fmt.Sprintf("nvdc: meta entry: %v", err))
	}
	if err := cp.EncodeMetaHeader(d.metaShadow, d.metaEntries); err != nil {
		panic(fmt.Sprintf("nvdc: meta header: %v", err))
	}
	off := int64(16 + slot*4)
	var entry [4]byte
	copy(entry[:], d.metaShadow[off:off+4])
	var header [16]byte
	copy(header[:], d.metaShadow[:16])
	d.mc.Write(d.cfg.Layout.MetaOffset+off, entry[:], nil)
	d.mc.Write(d.cfg.Layout.MetaOffset, header[:], nil)
}

// Trim drops lpn from the cache without writeback (block discard: the
// filesystem freed the block, so its contents are dead). The slot returns
// to the free pool.
func (d *Driver) Trim(lpn int64) {
	slot, ok := d.mapping[lpn]
	if !ok {
		return
	}
	delete(d.mapping, lpn)
	d.rep.Remove(slot)
	d.slots[slot] = slotState{lpn: noLPN}
	d.free = append(d.free, slot)
	d.metaEntries[slot] = cp.MetaEntry{}
	d.writeMetaEntry(slot)
	if d.cache != nil {
		d.cache.Invalidate(d.cfg.Layout.SlotAddr(slot), PageSize)
	}
}

// --- CP mailbox -----------------------------------------------------------

// sendCP queues a command into the CP mailbox (queue depth 1 on the PoC,
// §IV-C; CPQueueDepth slots when pipelining) and calls done when the device
// acks it — or with an error after the ack deadline has expired CPRetries
// times.
func (d *Driver) sendCP(cmd cp.Command, done func(cp.Status, error)) {
	d.cpQueue = append(d.cpQueue, cpRequest{cmd: cmd, done: done})
	d.cpDispatch()
}

// cpDispatch hands queued commands to free mailbox slots.
func (d *Driver) cpDispatch() {
	for i := range d.cpSlots {
		if len(d.cpQueue) == 0 {
			return
		}
		if d.cpSlots[i].busy {
			continue
		}
		req := d.cpQueue[0]
		d.cpQueue = d.cpQueue[1:]
		d.cpStart(i, req)
	}
}

// CP-area layout with depth (mirrors the NVMC's): command slot i at
// cacheline 2i, its ack at cacheline 2i+1. Slot 0 matches cp's constants.
func cpCmdOffset(i int) int64 { return int64(128 * i) }
func cpAckOffset(i int) int64 { return int64(128*i + 64) }

func (d *Driver) cpStart(slot int, req cpRequest) {
	d.issueCP(slot, req, 0)
}

// issueCP writes (or re-writes) req's command word with a freshly toggled
// phase bit and starts the deadline-bounded ack poll. On a re-issue the ack
// cacheline is cleared first: the one-bit phase protocol cannot tell an ack
// for this attempt from a stale same-phase ack two commands back, and the
// zero word never checksum-validates, so clearing closes that ABA window.
// Re-issuing while the device still works on the earlier attempt is safe:
// the NVMC serves commands one at a time per slot, stale-phase acks are
// ignored, and the page moves themselves are idempotent.
func (d *Driver) issueCP(slot int, req cpRequest, attempt int) {
	if d.halted {
		return
	}
	sl := &d.cpSlots[slot]
	sl.busy = true
	sl.phase = !sl.phase
	req.cmd.Phase = sl.phase
	var word [16]byte
	putUint64(word[0:8], req.cmd.Encode())
	putUint64(word[8:16], req.cmd.EncodeSecondary())
	// Build + store + clflush + sfence the CP cacheline, then the bus write
	// lands it in DRAM where the NVMC's next poll sees it.
	d.k.Schedule(d.cfg.CPWriteCost, func() {
		writeCmd := func() {
			d.mc.Write(d.cfg.Layout.CPOffset+cpCmdOffset(slot), word[:], func() {
				deadline := d.k.Now().Add(d.cfg.AckTimeout)
				d.pollAck(slot, req, attempt, deadline, d.cfg.AckPollInterval)
			})
		}
		if attempt == 0 {
			writeCmd()
			return
		}
		d.mc.Write(d.cfg.Layout.CPOffset+cpAckOffset(slot), make([]byte, 8), writeCmd)
	})
}

// pollAck polls the ack word with exponential backoff until a checksum-valid
// ack with the expected phase arrives or the attempt's deadline passes; the
// deadline re-issues (bounded) and then surfaces a CPTimeoutError.
func (d *Driver) pollAck(slot int, req cpRequest, attempt int, deadline sim.Time, interval sim.Duration) {
	if d.halted {
		return
	}
	d.stats.AckPolls++
	buf := make([]byte, 8)
	d.mc.Read(d.cfg.Layout.CPOffset+cpAckOffset(slot), buf, func() {
		if d.halted {
			return
		}
		w := leUint64(buf)
		ack := cp.DecodeAck(w)
		if ack.Phase == d.cpSlots[slot].phase && (ack.Status == cp.StatusDone || ack.Status == cp.StatusError) {
			if cp.AckChecksumOK(w) {
				d.cpSlots[slot].busy = false
				st := ack.Status
				d.cpDispatch()
				req.done(st, nil)
				return
			}
			// Corrupt ack: the device already posted its one ack for this
			// phase, so nothing will overwrite the word — only the deadline
			// path (re-issue) recovers. Keep polling until it fires.
			d.errs.Inc(CtrAckChecksumBad)
		}
		if d.k.Now() >= deadline {
			d.errs.Inc(CtrAckTimeout)
			if attempt+1 < d.cfg.CPRetries {
				d.errs.Inc(CtrCPReissue)
				d.issueCP(slot, req, attempt+1)
				return
			}
			d.cpSlots[slot].busy = false
			d.cpDispatch()
			req.done(0, &CPTimeoutError{Opcode: req.cmd.Opcode, Slot: slot, Attempts: attempt + 1})
			return
		}
		// Exponential backoff: cheap uncached reads early (acks usually land
		// within a window or two), then progressively lazier polling so a
		// stalled device does not monopolize the bus with 64 B reads.
		next := interval * 2
		if max := d.cfg.AckPollInterval * 16; next > max {
			next = max
		}
		d.k.Schedule(interval, func() { d.pollAck(slot, req, attempt, deadline, next) })
	})
}

// FlushLPN synchronously persists lpn's slot to the NVM media: a
// driver-initiated writeback that leaves the mapping intact and marks the
// slot clean. Degraded mode writes every acked store through with it, so
// the suspect DRAM cache never holds the only copy of data. A miss or
// clean slot completes immediately.
func (d *Driver) FlushLPN(lpn int64, done func(error)) {
	slot, ok := d.mapping[lpn]
	if !ok || !d.slots[slot].dirty {
		done(nil)
		return
	}
	gen := d.slots[slot].gen
	flush := func() {
		d.errs.Inc(CtrWriteThrough)
		d.stats.Writebacks++
		d.sendCP(cp.Command{Opcode: cp.OpWriteback, DRAMSlot: uint32(slot), NANDPage: uint32(lpn)},
			func(st cp.Status, err error) {
				if err == nil && st != cp.StatusDone {
					err = fmt.Errorf("nvdc: write-through of lpn %d: device error status", lpn)
				}
				if err != nil {
					// The persistence path is gone: refuse further writes.
					d.errs.Inc(CtrWritebackFail)
					d.degrade(ModeReadOnly, fmt.Sprintf("write-through of lpn %d failed hard", lpn))
					done(err)
					return
				}
				// Clear dirty only if no store raced the flush (the gen
				// guard); a racing store's bytes may postdate the clflush.
				if s, still := d.mapping[lpn]; still && s == slot && d.slots[slot].gen == gen {
					d.slots[slot].dirty = false
					d.metaEntries[slot].Dirty = false
					d.writeMetaEntry(slot)
				}
				done(nil)
			})
	}
	if d.cache != nil && !d.cfg.UnsafeNoFlush {
		if err := d.cache.Clflush(d.cfg.Layout.SlotAddr(slot), PageSize); err != nil {
			panic(fmt.Sprintf("nvdc: clflush: %v", err))
		}
		d.cache.SFence()
	}
	d.k.Schedule(d.cfg.FlushCost4K, flush)
}

// --- Recovery ---------------------------------------------------------------

// RecoverFromMetadata rebuilds the slot map from the metadata area after a
// restart (all recovered slots are clean: the power-fail flush persisted
// them). It returns the number of recovered mappings.
func (d *Driver) RecoverFromMetadata(meta []byte) (int, error) {
	entries, err := cp.DecodeMeta(meta)
	if err != nil {
		return 0, err
	}
	if len(entries) != len(d.slots) {
		return 0, fmt.Errorf("nvdc: metadata has %d slots, driver has %d", len(entries), len(d.slots))
	}
	d.mapping = make(map[int64]int)
	d.free = d.free[:0]
	d.rep = newReplacer(d.cfg.Policy, len(d.slots))
	// Reboot: lift a power-fail halt and forget in-flight mailbox state.
	d.halted = false
	d.inflight = make(map[int64][]func(int, error))
	d.cpQueue = nil
	for i := range d.cpSlots {
		d.cpSlots[i].busy = false
	}
	n := 0
	for i, e := range entries {
		if e.Valid {
			lpn := int64(e.NANDPage)
			d.slots[i] = slotState{lpn: lpn, dirty: false}
			d.mapping[lpn] = i
			d.rep.Insert(i)
			d.metaEntries[i] = cp.MetaEntry{NANDPage: e.NANDPage, Valid: true}
			n++
		} else {
			d.slots[i] = slotState{lpn: noLPN}
			d.free = append(d.free, i)
			d.metaEntries[i] = cp.MetaEntry{}
		}
	}
	copy(d.metaShadow, meta)
	return n, nil
}

func leUint64(b []byte) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
