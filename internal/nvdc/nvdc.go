// Package nvdc is the NVDIMM-C device driver (§IV-B/§IV-C): the software
// half of the co-design. It exposes the Z-NAND capacity as a block device
// whose blocks are served from the reserved DRAM region, manages that region
// as a fully associative 4 KB-slot cache (LRC by default), orchestrates
// cachefill and writeback through the CP area, and maintains CPU-cache
// coherence around the NVMC's invisible tRFC-window transfers (§V-B) with
// explicit clflush/sfence.
//
// All driver work is expressed against the simulated machine: CP commands
// are iMC bus writes into the CP area, acks are polled with uncached bus
// reads, and CPU-side costs (victim search, PTE and metadata updates, cache
// flushes) are charged as simulated time on the driver lock so that
// multi-thread contention behaves like the real lock would.
package nvdc

import (
	"fmt"

	"nvdimmc/internal/cp"
	"nvdimmc/internal/cpucache"
	"nvdimmc/internal/hostmem"
	"nvdimmc/internal/imc"
	"nvdimmc/internal/sim"
)

// PageSize is the driver's management granularity (§IV-B: mappings of
// Z-NAND and DRAM pages are kept at 4 KB).
const PageSize = 4096

// Config parameterizes the driver.
type Config struct {
	Layout hostmem.Layout
	// Policy selects the victim replacement algorithm (PoC: LRC).
	Policy Policy
	// TrackDirty enables dirty bits so clean victims skip writeback. The
	// PoC does not track dirtiness: every eviction writes back, which is
	// why pure-read misses still pay the writeback (§VII-B2).
	TrackDirty bool
	// CombineWBCF issues eviction writeback + cachefill as one OpCombined
	// command (future work §VII-C item 4).
	CombineWBCF bool

	// UnsafeNoFlush disables the §V-B clflush+sfence discipline before
	// writebacks and the invalidate after cachefills. FOR THE COHERENCE
	// ABLATION ONLY: with a CPU cache in the path, evictions then write
	// stale lines to NVM and fills are shadowed by stale lines — the data
	// corruption the paper's driver exists to prevent.
	UnsafeNoFlush bool

	// CPQueueDepth is the number of CP mailbox slots the driver pipelines
	// across (1 on the PoC; §VII-C item 2 needs BOTH device slots and this
	// driver-side dispatch to help). Must not exceed the NVMC's
	// CommandDepth.
	CPQueueDepth int

	// CPU-side cost model.
	MapCost         sim.Duration // victim search + PTE + metadata update per miss
	FlushCost4K     sim.Duration // clflush loop over one 4 KB slot + sfence
	CPWriteCost     sim.Duration // build/store/flush the CP cacheline
	AckPollInterval sim.Duration // delay between ack polls

	// MediaWritten reports whether a block has data on the NVM media (the
	// filesystem's written/unwritten-extent knowledge; core wires it to the
	// FTL mapping). Faults on unwritten blocks taken from the FREE slot
	// pool skip the CP cachefill and zero the slot locally — without this
	// fast path the Fig. 7 free-slot phase could never reach the SSD-bound
	// 518 MB/s (a CP cachefill alone caps at ~175 MB/s). The PoC's eviction
	// path still pays the full writeback+cachefill pair (§VII-B1).
	MediaWritten func(lpn int64) bool

	// Hypothetical device mode (§VII-D1 / Fig. 12): the CP path is bypassed
	// and each miss step waits a programmable delay tD instead of talking
	// to the FPGA. Data is NOT moved (the hypothetical PoC's FPGA "does
	// nothing"), so this mode is for performance experiments only.
	Hypothetical bool
	TD           sim.Duration
	// TDWaits is the nominal number of refresh-window delays per miss
	// (3 per §V-A: poll, data, status).
	TDWaits int
	// TDOverlap is the fraction of each wait hidden by pipelining with the
	// driver's own mapping work and the ack-free hypothetical path. The
	// exposed stall per miss is TDWaits*TD*(1-TDOverlap). Calibrated so the
	// single-thread Fig. 12 bandwidths land near the paper's.
	TDOverlap float64
}

// DefaultConfig returns the PoC-like driver configuration for the layout.
func DefaultConfig(layout hostmem.Layout) Config {
	return Config{
		Layout:          layout,
		Policy:          PolicyLRC,
		TrackDirty:      false,
		MapCost:         1200 * sim.Nanosecond,
		FlushCost4K:     2 * sim.Microsecond,
		CPWriteCost:     300 * sim.Nanosecond,
		AckPollInterval: 600 * sim.Nanosecond,
		TDWaits:         3,
		TDOverlap:       0.7,
	}
}

// Stats aggregates driver behaviour.
type Stats struct {
	Hits, Misses    uint64
	Evictions       uint64
	Writebacks      uint64
	Cachefills      uint64
	CombinedCmds    uint64
	AckPolls        uint64
	CoalescedFaults uint64 // faults that piggybacked on an in-flight miss
	FastFills       uint64 // free-slot fills of unwritten blocks (no CP)
	FreeSlots       int
	ResidentPages   int
}

type slotState struct {
	lpn   int64 // -1 if free
	dirty bool
}

const noLPN = int64(-1)

type cpRequest struct {
	cmd  cp.Command
	done func(status cp.Status)
}

type cpSlot struct {
	phase bool
	busy  bool
}

// Driver is the nvdc driver instance for one NVDIMM-C module.
type Driver struct {
	k     *sim.Kernel
	mc    *imc.Controller
	cache *cpucache.Cache // optional functional CPU cache
	cfg   Config

	slots   []slotState
	free    []int
	mapping map[int64]int // block lpn -> slot
	rep     replacer

	inflight map[int64][]func(slot int)

	// CP mailbox slots: the PoC has one; with CPQueueDepth > 1 the driver
	// round-robins commands across slots and polls their acks concurrently.
	cpSlots []cpSlot
	cpQueue []cpRequest

	// lock serializes the driver's mapping-manipulation critical sections.
	lock *sim.Resource

	// metaShadow is the driver's authoritative copy of the metadata area.
	metaShadow  []byte
	metaEntries []cp.MetaEntry

	capacityPages int64

	stats Stats
}

// New builds a driver over the iMC-attached module. capacityPages is the
// block device size in 4 KB pages (the FTL's logical capacity). cache may be
// nil when only the timing path is exercised.
func New(k *sim.Kernel, mc *imc.Controller, cache *cpucache.Cache, capacityPages int64, cfg Config) (*Driver, error) {
	if err := cfg.Layout.Validate(); err != nil {
		return nil, err
	}
	if cp.MaxMetaEntries(cfg.Layout.MetaSize) < cfg.Layout.NumSlots {
		return nil, fmt.Errorf("nvdc: metadata area (%d B) cannot index %d slots",
			cfg.Layout.MetaSize, cfg.Layout.NumSlots)
	}
	if cfg.TDWaits <= 0 {
		cfg.TDWaits = 3
	}
	if cfg.CPQueueDepth < 1 {
		cfg.CPQueueDepth = 1
	}
	d := &Driver{
		k:             k,
		mc:            mc,
		cache:         cache,
		cfg:           cfg,
		slots:         make([]slotState, cfg.Layout.NumSlots),
		mapping:       make(map[int64]int),
		rep:           newReplacer(cfg.Policy, cfg.Layout.NumSlots),
		inflight:      make(map[int64][]func(int)),
		lock:          sim.NewResource(k, "nvdc-lock"),
		cpSlots:       make([]cpSlot, cfg.CPQueueDepth),
		metaShadow:    make([]byte, cfg.Layout.MetaSize),
		metaEntries:   make([]cp.MetaEntry, cfg.Layout.NumSlots),
		capacityPages: capacityPages,
	}
	for i := range d.slots {
		d.slots[i].lpn = noLPN
		d.free = append(d.free, i)
	}
	if err := cp.EncodeMeta(d.metaShadow, d.metaEntries); err != nil {
		return nil, err
	}
	// Initialize the metadata area in DRAM so a power failure before any
	// mapping change finds a valid (empty) table.
	mc.Write(cfg.Layout.MetaOffset, d.metaShadow, nil)
	return d, nil
}

// CapacityPages returns the block device size in 4 KB pages.
func (d *Driver) CapacityPages() int64 { return d.capacityPages }

// Stats returns a snapshot of the driver counters.
func (d *Driver) Stats() Stats {
	s := d.stats
	s.FreeSlots = len(d.free)
	s.ResidentPages = len(d.mapping)
	return s
}

// Config returns the driver configuration.
func (d *Driver) Config() Config { return d.cfg }

// SlotOf reports the slot caching lpn, or -1.
func (d *Driver) SlotOf(lpn int64) int {
	if s, ok := d.mapping[lpn]; ok {
		return s
	}
	return -1
}

// IsResident reports whether lpn is in the DRAM cache.
func (d *Driver) IsResident(lpn int64) bool { return d.SlotOf(lpn) >= 0 }

// Serialize runs fn after holding the driver's device lock for hold time —
// the per-op radix-tree lookup and coherence bookkeeping every fsdax access
// performs. Miss-path critical sections contend on the same lock.
func (d *Driver) Serialize(hold sim.Duration, fn func()) {
	d.lock.Acquire(hold, func(start sim.Time) {
		d.k.ScheduleAt(start.Add(hold), fn)
	})
}

// --- Fault path -----------------------------------------------------------

// Fault is the DAX page-fault path (Fig. 6): it guarantees lpn is resident
// and calls done with its slot. write marks the slot dirty. Concurrent
// faults on the same lpn coalesce onto one miss.
func (d *Driver) Fault(lpn int64, write bool, done func(slot int)) {
	if lpn < 0 || lpn >= d.capacityPages {
		panic(fmt.Sprintf("nvdc: fault lpn %d out of device range %d", lpn, d.capacityPages))
	}
	if slot, ok := d.mapping[lpn]; ok {
		d.stats.Hits++
		d.rep.Touch(slot)
		if write {
			d.markDirty(slot)
		}
		done(slot)
		return
	}
	if waiters, ok := d.inflight[lpn]; ok {
		d.stats.CoalescedFaults++
		d.inflight[lpn] = append(waiters, func(slot int) {
			if write {
				d.markDirty(slot)
			}
			done(slot)
		})
		return
	}
	d.stats.Misses++
	d.inflight[lpn] = []func(int){func(slot int) {
		if write {
			d.markDirty(slot)
		}
		done(slot)
	}}
	d.missPath(lpn)
}

func (d *Driver) markDirty(slot int) {
	if !d.slots[slot].dirty {
		d.slots[slot].dirty = true
		d.metaEntries[slot].Dirty = true
		d.writeMetaEntry(slot)
	}
}

// missPath runs the cachefill (and possibly eviction writeback) for lpn.
func (d *Driver) missPath(lpn int64) {
	// Step 1 (under the driver lock): claim a slot, evicting if needed.
	d.lock.Acquire(d.cfg.MapCost/2, func(start sim.Time) {
		d.k.ScheduleAt(start.Add(d.cfg.MapCost/2), func() {
			slot, victimLPN, needWB := d.claimSlot()
			// Fast path: a free slot for a block with nothing on the media
			// needs no CP round trip — zero the slot locally and map it.
			// Without this path the Fig. 7 free-slot phase could never be
			// SSD-bound (a CP cachefill alone caps at ~175 MB/s).
			if victimLPN == noLPN && !needWB && !d.cfg.Hypothetical &&
				d.cfg.MediaWritten != nil && !d.cfg.MediaWritten(lpn) {
				d.stats.FastFills++
				d.mc.Write(d.cfg.Layout.SlotAddr(slot), make([]byte, PageSize), func() {
					if d.cache != nil {
						d.cache.Invalidate(d.cfg.Layout.SlotAddr(slot), PageSize)
					}
					d.install(lpn, slot)
				})
				return
			}
			d.transfer(lpn, slot, victimLPN, needWB)
		})
	})
}

// claimSlot picks the slot that will receive lpn's data. It returns the
// victim's lpn (noLPN if the slot was free) and whether a writeback is
// needed.
func (d *Driver) claimSlot() (slot int, victimLPN int64, needWB bool) {
	if len(d.free) > 0 {
		slot = d.free[len(d.free)-1]
		d.free = d.free[:len(d.free)-1]
		return slot, noLPN, false
	}
	slot = d.rep.Victim()
	if slot < 0 {
		panic("nvdc: no free slot and no victim")
	}
	d.stats.Evictions++
	victimLPN = d.slots[slot].lpn
	// Unmap immediately: concurrent access to the victim page becomes a
	// miss that queues behind this slot transition via the CP mailbox.
	delete(d.mapping, victimLPN)
	needWB = !d.cfg.TrackDirty || d.slots[slot].dirty
	d.slots[slot].lpn = noLPN
	d.metaEntries[slot].Valid = false
	d.writeMetaEntry(slot)
	return slot, victimLPN, needWB
}

// transfer performs writeback (if needed) then cachefill, then installs the
// mapping.
func (d *Driver) transfer(lpn int64, slot int, victimLPN int64, needWB bool) {
	finish := func() {
		// CPU cachelines over the slot hold pre-fill data: invalidate so
		// loads observe the NVMC's fresh bytes (§V-B).
		if d.cache != nil && !d.cfg.UnsafeNoFlush {
			d.cache.Invalidate(d.cfg.Layout.SlotAddr(slot), PageSize)
		}
		d.install(lpn, slot)
	}

	if d.cfg.Hypothetical {
		// Fig. 12 mode: no FPGA communication; the driver waits TDWaits
		// programmable delays per miss (§VII-D1), of which TDOverlap is
		// hidden behind the driver's own mapping work and the ack-free
		// pipeline — the single-thread bandwidths the paper reports imply
		// an exposed stall of roughly one tD per access (see the Fig. 12
		// calibration note in EXPERIMENTS.md).
		stall := sim.Duration(float64(d.cfg.TDWaits) * float64(d.cfg.TD) * (1 - d.cfg.TDOverlap))
		d.k.Schedule(stall, finish)
		return
	}

	cachefill := func() {
		d.stats.Cachefills++
		d.sendCP(cp.Command{Opcode: cp.OpCachefill, DRAMSlot: uint32(slot), NANDPage: uint32(lpn)},
			func(cp.Status) { finish() })
	}

	if !needWB {
		cachefill()
		return
	}

	// Coherence discipline before the NVMC reads the slot: flush + fence.
	flushDone := func() {
		if d.cfg.CombineWBCF {
			d.stats.CombinedCmds++
			d.sendCP(cp.Command{
				Opcode: cp.OpCombined,
				// Primary pair = cachefill, secondary = writeback (§cp).
				DRAMSlot: uint32(slot), NANDPage: uint32(lpn),
				DRAMSlot2: uint32(slot), NANDPage2: uint32(victimLPN),
			}, func(cp.Status) { finish() })
			return
		}
		d.stats.Writebacks++
		d.sendCP(cp.Command{Opcode: cp.OpWriteback, DRAMSlot: uint32(slot), NANDPage: uint32(victimLPN)},
			func(cp.Status) { cachefill() })
	}
	if d.cache != nil && !d.cfg.UnsafeNoFlush {
		if err := d.cache.Clflush(d.cfg.Layout.SlotAddr(slot), PageSize); err != nil {
			panic(fmt.Sprintf("nvdc: clflush: %v", err))
		}
		d.cache.SFence()
	}
	d.k.Schedule(d.cfg.FlushCost4K, flushDone)
}

// install maps lpn to slot under the driver lock: mapping + PTE + metadata
// update, then wake the fault waiters.
func (d *Driver) install(lpn int64, slot int) {
	d.lock.Acquire(d.cfg.MapCost/2, func(start sim.Time) {
		d.k.ScheduleAt(start.Add(d.cfg.MapCost/2), func() {
			d.mapping[lpn] = slot
			d.slots[slot] = slotState{lpn: lpn, dirty: false}
			d.rep.Insert(slot)
			d.metaEntries[slot] = cp.MetaEntry{NANDPage: uint32(lpn), Valid: true}
			d.writeMetaEntry(slot)
			waiters := d.inflight[lpn]
			delete(d.inflight, lpn)
			for _, w := range waiters {
				w(slot)
			}
		})
	})
}

// writeMetaEntry updates slot's entry and the header in the DRAM metadata
// area (two small bus writes; the CPU cost is folded into MapCost).
func (d *Driver) writeMetaEntry(slot int) {
	if err := cp.EncodeMetaEntry(d.metaShadow, slot, d.metaEntries[slot]); err != nil {
		panic(fmt.Sprintf("nvdc: meta entry: %v", err))
	}
	if err := cp.EncodeMetaHeader(d.metaShadow, d.metaEntries); err != nil {
		panic(fmt.Sprintf("nvdc: meta header: %v", err))
	}
	off := int64(16 + slot*4)
	var entry [4]byte
	copy(entry[:], d.metaShadow[off:off+4])
	var header [16]byte
	copy(header[:], d.metaShadow[:16])
	d.mc.Write(d.cfg.Layout.MetaOffset+off, entry[:], nil)
	d.mc.Write(d.cfg.Layout.MetaOffset, header[:], nil)
}

// Trim drops lpn from the cache without writeback (block discard: the
// filesystem freed the block, so its contents are dead). The slot returns
// to the free pool.
func (d *Driver) Trim(lpn int64) {
	slot, ok := d.mapping[lpn]
	if !ok {
		return
	}
	delete(d.mapping, lpn)
	d.rep.Remove(slot)
	d.slots[slot] = slotState{lpn: noLPN}
	d.free = append(d.free, slot)
	d.metaEntries[slot] = cp.MetaEntry{}
	d.writeMetaEntry(slot)
	if d.cache != nil {
		d.cache.Invalidate(d.cfg.Layout.SlotAddr(slot), PageSize)
	}
}

// --- CP mailbox -----------------------------------------------------------

// sendCP queues a command into the CP mailbox (queue depth 1 on the PoC,
// §IV-C; CPQueueDepth slots when pipelining) and calls done when the device
// acks it.
func (d *Driver) sendCP(cmd cp.Command, done func(cp.Status)) {
	d.cpQueue = append(d.cpQueue, cpRequest{cmd: cmd, done: done})
	d.cpDispatch()
}

// cpDispatch hands queued commands to free mailbox slots.
func (d *Driver) cpDispatch() {
	for i := range d.cpSlots {
		if len(d.cpQueue) == 0 {
			return
		}
		if d.cpSlots[i].busy {
			continue
		}
		req := d.cpQueue[0]
		d.cpQueue = d.cpQueue[1:]
		d.cpStart(i, req)
	}
}

// CP-area layout with depth (mirrors the NVMC's): command slot i at
// cacheline 2i, its ack at cacheline 2i+1. Slot 0 matches cp's constants.
func cpCmdOffset(i int) int64 { return int64(128 * i) }
func cpAckOffset(i int) int64 { return int64(128*i + 64) }

func (d *Driver) cpStart(slot int, req cpRequest) {
	sl := &d.cpSlots[slot]
	sl.busy = true
	sl.phase = !sl.phase
	req.cmd.Phase = sl.phase
	var word [16]byte
	putUint64(word[0:8], req.cmd.Encode())
	putUint64(word[8:16], req.cmd.EncodeSecondary())
	// Build + store + clflush + sfence the CP cacheline, then the bus write
	// lands it in DRAM where the NVMC's next poll sees it.
	d.k.Schedule(d.cfg.CPWriteCost, func() {
		d.mc.Write(d.cfg.Layout.CPOffset+cpCmdOffset(slot), word[:], func() {
			d.pollAck(slot, req)
		})
	})
}

func (d *Driver) pollAck(slot int, req cpRequest) {
	d.stats.AckPolls++
	buf := make([]byte, 8)
	d.mc.Read(d.cfg.Layout.CPOffset+cpAckOffset(slot), buf, func() {
		ack := cp.DecodeAck(leUint64(buf))
		if ack.Phase == d.cpSlots[slot].phase && (ack.Status == cp.StatusDone || ack.Status == cp.StatusError) {
			d.cpSlots[slot].busy = false
			st := ack.Status
			d.cpDispatch()
			req.done(st)
			return
		}
		d.k.Schedule(d.cfg.AckPollInterval, func() { d.pollAck(slot, req) })
	})
}

// --- Recovery ---------------------------------------------------------------

// RecoverFromMetadata rebuilds the slot map from the metadata area after a
// restart (all recovered slots are clean: the power-fail flush persisted
// them). It returns the number of recovered mappings.
func (d *Driver) RecoverFromMetadata(meta []byte) (int, error) {
	entries, err := cp.DecodeMeta(meta)
	if err != nil {
		return 0, err
	}
	if len(entries) != len(d.slots) {
		return 0, fmt.Errorf("nvdc: metadata has %d slots, driver has %d", len(entries), len(d.slots))
	}
	d.mapping = make(map[int64]int)
	d.free = d.free[:0]
	d.rep = newReplacer(d.cfg.Policy, len(d.slots))
	n := 0
	for i, e := range entries {
		if e.Valid {
			lpn := int64(e.NANDPage)
			d.slots[i] = slotState{lpn: lpn, dirty: false}
			d.mapping[lpn] = i
			d.rep.Insert(i)
			d.metaEntries[i] = cp.MetaEntry{NANDPage: e.NANDPage, Valid: true}
			n++
		} else {
			d.slots[i] = slotState{lpn: noLPN}
			d.free = append(d.free, i)
			d.metaEntries[i] = cp.MetaEntry{}
		}
	}
	copy(d.metaShadow, meta)
	return n, nil
}

func leUint64(b []byte) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
