package nvdc

import (
	"testing"
	"testing/quick"
)

func TestLRCVictimIsCachingOrder(t *testing.T) {
	r := newLRC()
	r.Insert(1)
	r.Insert(2)
	r.Insert(3)
	r.Touch(1) // must not protect under LRC
	if v := r.Victim(); v != 1 {
		t.Fatalf("victim = %d, want 1 (first cached)", v)
	}
	if v := r.Victim(); v != 2 {
		t.Fatalf("victim = %d, want 2", v)
	}
}

func TestLRCRemoveIsLazy(t *testing.T) {
	r := newLRC()
	r.Insert(1)
	r.Insert(2)
	r.Remove(1)
	if r.Len() != 1 {
		t.Fatalf("len = %d", r.Len())
	}
	if v := r.Victim(); v != 2 {
		t.Fatalf("victim = %d, want 2 (1 was removed)", v)
	}
}

func TestLRUVictimIsLeastRecent(t *testing.T) {
	r := newLRU()
	r.Insert(1)
	r.Insert(2)
	r.Insert(3)
	r.Touch(1)
	if v := r.Victim(); v != 2 {
		t.Fatalf("victim = %d, want 2", v)
	}
}

func TestLRURemove(t *testing.T) {
	r := newLRU()
	r.Insert(1)
	r.Insert(2)
	r.Remove(2)
	if v := r.Victim(); v != 1 {
		t.Fatalf("victim = %d, want 1", v)
	}
	if r.Victim() != -1 {
		t.Fatal("empty replacer returned a victim")
	}
}

func TestClockSecondChance(t *testing.T) {
	r := newClock(8)
	r.Insert(0)
	r.Insert(1)
	r.Insert(2)
	r.Touch(0)
	// Victim scan clears ref bits; 0 was re-referenced after insert, but
	// all three have ref set from insertion — the hand clears them in order
	// and evicts the first it revisits un-referenced.
	v := r.Victim()
	if v < 0 || v > 2 {
		t.Fatalf("victim = %d", v)
	}
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
}

func TestClockRemove(t *testing.T) {
	r := newClock(4)
	r.Insert(1)
	r.Insert(2)
	r.Remove(1)
	if r.Len() != 1 {
		t.Fatalf("len = %d", r.Len())
	}
	if v := r.Victim(); v != 2 {
		t.Fatalf("victim = %d, want 2", v)
	}
}

// Property: for every policy, inserting N distinct slots then taking N
// victims returns each slot exactly once (conservation).
func TestReplacerConservationProperty(t *testing.T) {
	f := func(policyRaw uint8, nRaw uint8) bool {
		n := int(nRaw)%40 + 1
		var r replacer
		switch policyRaw % 3 {
		case 0:
			r = newLRC()
		case 1:
			r = newLRU()
		default:
			r = newClock(n)
		}
		for i := 0; i < n; i++ {
			r.Insert(i)
		}
		seen := make(map[int]bool)
		for i := 0; i < n; i++ {
			v := r.Victim()
			if v < 0 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return r.Victim() == -1 && len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyString(t *testing.T) {
	if PolicyLRC.String() != "lrc" || PolicyLRU.String() != "lru" || PolicyClock.String() != "clock" {
		t.Fatal("policy names")
	}
}

func TestNewReplacerSelects(t *testing.T) {
	if _, ok := newReplacer(PolicyLRU, 4).(*lru); !ok {
		t.Fatal("PolicyLRU did not build lru")
	}
	if _, ok := newReplacer(PolicyClock, 4).(*clock); !ok {
		t.Fatal("PolicyClock did not build clock")
	}
	if _, ok := newReplacer(PolicyLRC, 4).(*lrc); !ok {
		t.Fatal("PolicyLRC did not build lrc")
	}
}
