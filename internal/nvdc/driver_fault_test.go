// Fault-schedule tests for the driver's CP transport and degradation
// machinery, run against the full simulated machine. The external test
// package lets these import core (core imports nvdc, so in-package tests
// cannot) while the coverage still lands on the driver: the deadline/
// re-issue ack protocol, cachefill retry exhaustion, the forward-only
// Healthy -> Degraded -> ReadOnly lattice and slot quarantine.
package nvdc_test

import (
	"bytes"
	"errors"
	"testing"

	"nvdimmc/internal/core"
	"nvdimmc/internal/fault"
	"nvdimmc/internal/nvdc"
	"nvdimmc/internal/sim"
)

const pageSize = core.PageSize

// rigConfig is a tiny cached system with the fault registry armed and the
// conformance auditor on (the default), so every fault-path test doubles as
// a protocol check.
func rigConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.CacheBytes = 128 << 10
	cfg.NAND.BlocksPerDie = 32
	cfg.NAND.PagesPerBlock = 16
	cfg.NAND.ProgramLatency = 20 * sim.Microsecond
	cfg.NAND.EraseLatency = 100 * sim.Microsecond
	cfg.Seed = 0x5EED
	cfg.FaultSeed = 0xFA17
	return cfg
}

func newRig(t *testing.T, cfg core.Config) *core.System {
	t.Helper()
	s, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// prewrite puts a page on the media through the FTL so the next DAX access
// takes the full CP cachefill path (unwritten pages use the no-CP fast fill).
func prewrite(t *testing.T, s *core.System, lpn int64, data []byte) {
	t.Helper()
	done := false
	s.FTL.WritePage(lpn, data, func(err error) {
		if err != nil {
			t.Fatalf("prewrite lpn %d: %v", lpn, err)
		}
		done = true
	})
	if err := s.RunUntil(func() bool { return done }, 100*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
}

func loadSync(t *testing.T, s *core.System, lpn int64) ([]byte, error) {
	t.Helper()
	buf := make([]byte, pageSize)
	var ferr error
	done := false
	s.LoadErr(lpn*pageSize, buf, func(err error) { ferr = err; done = true })
	if err := s.RunUntil(func() bool { return done }, 500*sim.Millisecond); err != nil {
		t.Fatalf("load lpn %d: %v", lpn, err)
	}
	return buf, ferr
}

func storeSync(t *testing.T, s *core.System, lpn int64, data []byte) error {
	t.Helper()
	var ferr error
	done := false
	s.StoreErr(lpn*pageSize, data, func(err error) { ferr = err; done = true })
	if err := s.RunUntil(func() bool { return done }, 500*sim.Millisecond); err != nil {
		t.Fatalf("store lpn %d: %v", lpn, err)
	}
	return ferr
}

func fill(n int, b byte) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = b ^ byte(i)
	}
	return p
}

// TestAckTransportRecovery is the deadline/re-issue protocol under one
// injected transport fault per case: the access must succeed, the recovery
// must show in the named counters, and the driver must stay healthy.
func TestAckTransportRecovery(t *testing.T) {
	for _, tc := range []struct {
		name string
		arm  func(g *fault.Registry)
		want []string // counters that must be nonzero after recovery
	}{
		{
			name: "ack-drop-deadline-reissue",
			arm:  func(g *fault.Registry) { g.OnOccurrence(fault.CPAckDrop, 1) },
			want: []string{nvdc.CtrAckTimeout, nvdc.CtrCPReissue},
		},
		{
			name: "ack-corrupt-checksum-reissue",
			arm:  func(g *fault.Registry) { g.OnOccurrence(fault.CPAckCorrupt, 1) },
			want: []string{nvdc.CtrAckChecksumBad, nvdc.CtrAckTimeout},
		},
		{
			name: "double-drop-two-reissues",
			arm:  func(g *fault.Registry) { g.OnOccurrence(fault.CPAckDrop, 1).Times(2) },
			want: []string{nvdc.CtrAckTimeout, nvdc.CtrCPReissue},
		},
		{
			name: "read-upset-cachefill-retry",
			arm:  func(g *fault.Registry) { g.OnOccurrence(fault.NANDReadBitFlip, 1).Times(2) },
			want: []string{nvdc.CtrCachefillRetry},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := newRig(t, rigConfig())
			want := fill(pageSize, 0xA5)
			prewrite(t, s, 7, want)
			tc.arm(s.Faults)
			got, err := loadSync(t, s, 7)
			if err != nil {
				t.Fatalf("access must survive the transient fault: %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatal("data corrupted across recovery")
			}
			ctr := s.Driver.Counters()
			for _, name := range tc.want {
				if ctr.Get(name) == 0 {
					t.Fatalf("counter %q did not record the recovery:\n%v", name, ctr)
				}
			}
			if m := s.Driver.Mode(); m != nvdc.ModeHealthy {
				t.Fatalf("mode = %v after recoverable fault", m)
			}
			if err := s.CheckHealth(); err != nil {
				t.Fatalf("recovered faulted run must be healthy: %v", err)
			}
		})
	}
}

// TestCPRetriesExhausted drops every ack: each cachefill attempt must burn
// exactly CPRetries issues before its CPTimeoutError, the driver must retry
// the fill CachefillRetries times, then quarantine the slot and degrade.
func TestCPRetriesExhausted(t *testing.T) {
	s := newRig(t, rigConfig())
	prewrite(t, s, 3, fill(pageSize, 0x42))
	s.Faults.Always(fault.CPAckDrop)

	_, err := loadSync(t, s, 3)
	if err == nil {
		t.Fatal("access must fail when no ack ever arrives")
	}
	var te *nvdc.CPTimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want CPTimeoutError", err)
	}
	cfg := s.Driver.Config()
	if te.Attempts != cfg.CPRetries {
		t.Fatalf("Attempts = %d, want CPRetries = %d", te.Attempts, cfg.CPRetries)
	}
	ctr := s.Driver.Counters()
	wantReissues := uint64(cfg.CachefillRetries * (cfg.CPRetries - 1))
	if got := ctr.Get(nvdc.CtrCPReissue); got != wantReissues {
		t.Fatalf("CtrCPReissue = %d, want %d (%d fills x %d re-issues)",
			got, wantReissues, cfg.CachefillRetries, cfg.CPRetries-1)
	}
	if got := ctr.Get(nvdc.CtrAckTimeout); got != uint64(cfg.CachefillRetries*cfg.CPRetries) {
		t.Fatalf("CtrAckTimeout = %d, want %d", got, cfg.CachefillRetries*cfg.CPRetries)
	}
	if s.Driver.Mode() != nvdc.ModeDegraded {
		t.Fatalf("mode = %v, want degraded", s.Driver.Mode())
	}
	if q := s.Driver.Quarantined(); len(q) != 1 {
		t.Fatalf("quarantined = %v, want one slot", q)
	}
}

// TestDegradationLattice walks Healthy -> Degraded -> ReadOnly through real
// failures and checks each state's contract, including that the lattice
// never moves backward.
func TestDegradationLattice(t *testing.T) {
	cfg := rigConfig()
	cfg.NVMC.AckAfterProgram = true // surface program failures to the driver
	s := newRig(t, cfg)

	// Healthy -> Degraded: uncorrectable reads exhaust the fill retries.
	prewrite(t, s, 9, fill(pageSize, 0x77))
	s.Faults.Always(fault.NANDReadBitFlip)
	if _, err := loadSync(t, s, 9); !errors.Is(err, nvdc.ErrMediaRead) {
		t.Fatalf("err = %v, want ErrMediaRead", err)
	}
	s.Faults.Clear(fault.NANDReadBitFlip)
	ds := s.Driver.Stats()
	if ds.Mode != nvdc.ModeDegraded || ds.SlotsQuarantined != 1 {
		t.Fatalf("after hard fill failure: mode=%v quarantined=%d", ds.Mode, ds.SlotsQuarantined)
	}
	if ctr := s.Driver.Counters(); ctr.Get(nvdc.CtrCachefillFail) != 1 ||
		ctr.Get(nvdc.CtrSlotQuarantined) != 1 || ctr.Get(nvdc.CtrModeDegraded) != 1 {
		t.Fatalf("degradation counters wrong:\n%v", ctr)
	}

	// Degraded contract: stores still work and write through to the media.
	if err := storeSync(t, s, 11, fill(pageSize, 0x11)); err != nil {
		t.Fatalf("degraded store: %v", err)
	}
	if s.Driver.Counters().Get(nvdc.CtrWriteThrough) == 0 {
		t.Fatal("degraded mode must write acked stores through")
	}

	// Degraded -> ReadOnly: a write-through hits a dead program path.
	s.Faults.Always(fault.NANDProgramFail)
	if err := storeSync(t, s, 12, fill(pageSize, 0x12)); err == nil {
		t.Fatal("store must fail when its write-through cannot persist")
	}
	if s.Driver.Mode() != nvdc.ModeReadOnly {
		t.Fatalf("mode = %v, want read-only", s.Driver.Mode())
	}
	if s.Driver.Counters().Get(nvdc.CtrWritebackFail) == 0 {
		t.Fatal("CtrWritebackFail did not record the dead program path")
	}
	s.Faults.Clear(fault.NANDProgramFail)

	// ReadOnly contract: writes refused with the typed error, resident data
	// still readable, and the mode never heals backward.
	if err := storeSync(t, s, 11, fill(pageSize, 0x13)); !errors.Is(err, nvdc.ErrReadOnly) {
		t.Fatalf("read-only store err = %v, want ErrReadOnly", err)
	}
	got, err := loadSync(t, s, 11)
	if err != nil || !bytes.Equal(got, fill(pageSize, 0x11)) {
		t.Fatalf("read-only read of acked data: %v", err)
	}
	if s.Driver.Mode() != nvdc.ModeReadOnly {
		t.Fatal("mode healed backward")
	}
}

// TestReadOnlyMissNeedsEviction fills the cache, forces read-only, and
// checks a miss that would need an eviction is refused (free-slot misses
// still work: resident data is all the driver can safely grow).
func TestReadOnlyMissNeedsEviction(t *testing.T) {
	cfg := rigConfig()
	cfg.NVMC.AckAfterProgram = true
	s := newRig(t, cfg)

	n := s.Layout.NumSlots
	for i := 0; i < n; i++ {
		if err := storeSync(t, s, int64(i), fill(pageSize, byte(0x40+i))); err != nil {
			t.Fatalf("prefill store %d: %v", i, err)
		}
	}
	s.Faults.Always(fault.NANDProgramFail)
	// The eviction writeback dies -> read-only, victim mapping restored.
	if err := storeSync(t, s, int64(n), fill(pageSize, 0xEE)); err == nil {
		t.Fatal("eviction store must fail with the writeback path dead")
	}
	if s.Driver.Mode() != nvdc.ModeReadOnly {
		t.Fatalf("mode = %v, want read-only", s.Driver.Mode())
	}
	for i := 0; i < n; i++ {
		if !s.Driver.IsResident(int64(i)) {
			t.Fatalf("acked lpn %d lost residency", i)
		}
	}
	if _, err := loadSync(t, s, int64(n+1)); !errors.Is(err, nvdc.ErrReadOnly) {
		t.Fatalf("read-miss needing eviction: err = %v, want ErrReadOnly", err)
	}
}

// TestFlushLPN covers the msync entry points: non-resident and clean slots
// complete immediately with no CP traffic; a dirty slot writes through and
// comes back clean.
func TestFlushLPN(t *testing.T) {
	s := newRig(t, rigConfig())

	flush := func(lpn int64) error {
		var ferr error
		done := false
		s.Driver.FlushLPN(lpn, func(err error) { ferr = err; done = true })
		if err := s.RunUntil(func() bool { return done }, 500*sim.Millisecond); err != nil {
			t.Fatalf("flush lpn %d: %v", lpn, err)
		}
		return ferr
	}

	if err := flush(30); err != nil {
		t.Fatalf("non-resident flush: %v", err)
	}
	if wb := s.Driver.Stats().Writebacks; wb != 0 {
		t.Fatalf("non-resident flush moved data: %d writebacks", wb)
	}

	data := fill(pageSize, 0x5A)
	if err := storeSync(t, s, 5, data); err != nil {
		t.Fatal(err)
	}
	if err := flush(5); err != nil {
		t.Fatalf("dirty flush: %v", err)
	}
	if s.Driver.Counters().Get(nvdc.CtrWriteThrough) != 1 {
		t.Fatal("dirty flush must count one write-through")
	}
	s.RunFor(sim.Millisecond) // let the NAND program land
	if !s.FTL.IsMapped(5) {
		t.Fatal("flush never reached the media")
	}

	// Now clean: a second flush is a no-op.
	before := s.Driver.Stats().Writebacks
	if err := flush(5); err != nil {
		t.Fatalf("clean flush: %v", err)
	}
	if s.Driver.Stats().Writebacks != before {
		t.Fatal("clean flush issued a writeback")
	}
	if err := s.CheckHealth(); err != nil {
		t.Fatal(err)
	}
}

// TestHaltFreezesDriver checks the power-fail freeze: a fault started
// before the halt never completes, new faults are dropped, and no error
// counters move against the dead host.
func TestHaltFreezesDriver(t *testing.T) {
	s := newRig(t, rigConfig())
	prewrite(t, s, 2, fill(pageSize, 0x22))

	completed := false
	s.Driver.FaultE(2, false, func(slot int, err error) { completed = true })
	s.Driver.Halt()
	s.RunFor(50 * sim.Millisecond)
	if completed {
		t.Fatal("in-flight fault completed after the halt")
	}
	s.Driver.FaultE(2, false, func(slot int, err error) { completed = true })
	s.RunFor(10 * sim.Millisecond)
	if completed {
		t.Fatal("new fault ran on a halted driver")
	}
	ctr := s.Driver.Counters()
	for _, name := range nvdc.ErrorCounterNames() {
		if ctr.Get(name) != 0 {
			t.Fatalf("halted driver moved error counter %q:\n%v", name, ctr)
		}
	}
}

// TestCPQueueDepthPipelines runs concurrent misses across two mailbox slots
// (the §VII-C item-2 configuration) and under an ack drop on each slot.
func TestCPQueueDepthPipelines(t *testing.T) {
	cfg := rigConfig()
	cfg.Driver.CPQueueDepth = 2
	cfg.NVMC.CommandDepth = 2
	s := newRig(t, cfg)
	for i := int64(0); i < 4; i++ {
		prewrite(t, s, i, fill(pageSize, byte(i)))
	}
	s.Faults.OnOccurrence(fault.CPAckDrop, 2).Times(2)

	pending := 4
	var firstErr error
	for i := int64(0); i < 4; i++ {
		s.Driver.FaultE(i, false, func(slot int, err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
			pending--
		})
	}
	if err := s.RunUntil(func() bool { return pending == 0 }, 500*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if firstErr != nil {
		t.Fatalf("pipelined misses failed: %v", firstErr)
	}
	for i := int64(0); i < 4; i++ {
		if !s.Driver.IsResident(i) {
			t.Fatalf("lpn %d not resident after pipelined fill", i)
		}
	}
	if s.Driver.Counters().Get(nvdc.CtrCPReissue) == 0 {
		t.Fatal("dropped acks on the pipelined slots were never re-issued")
	}
}

// TestModeAndErrorStrings pins the human-facing surfaces: mode names, the
// CP timeout message, and the error-counter catalog (every Ctr constant
// except the legitimately-ambient write-through counter).
func TestModeAndErrorStrings(t *testing.T) {
	for m, want := range map[nvdc.Mode]string{
		nvdc.ModeHealthy:  "healthy",
		nvdc.ModeDegraded: "degraded",
		nvdc.ModeReadOnly: "read-only",
		nvdc.Mode(9):      "Mode(9)",
	} {
		if got := m.String(); got != want {
			t.Errorf("Mode(%d).String() = %q, want %q", int(m), got, want)
		}
	}
	e := &nvdc.CPTimeoutError{Opcode: 2, Slot: 1, Attempts: 4}
	if msg := e.Error(); !bytes.Contains([]byte(msg), []byte("no valid ack after 4 attempts")) {
		t.Errorf("CPTimeoutError message: %q", msg)
	}
	names := map[string]bool{}
	for _, n := range nvdc.ErrorCounterNames() {
		names[n] = true
	}
	for _, n := range []string{
		nvdc.CtrAckTimeout, nvdc.CtrAckChecksumBad, nvdc.CtrCPReissue,
		nvdc.CtrCachefillRetry, nvdc.CtrCachefillFail, nvdc.CtrWritebackFail,
		nvdc.CtrSlotQuarantined, nvdc.CtrModeDegraded, nvdc.CtrModeReadOnly,
		nvdc.CtrFaultFailed,
	} {
		if !names[n] {
			t.Errorf("ErrorCounterNames missing %q", n)
		}
	}
	if names[nvdc.CtrWriteThrough] {
		t.Error("CtrWriteThrough must not be an error-only counter (msync uses it)")
	}
}
