package nvdc

import "container/list"

// Policy selects the victim-slot replacement algorithm.
type Policy int

// Replacement policies. The PoC uses LRC (§IV-B: least-recently *cached*, a
// FIFO over cache insertion order, chosen for implementation simplicity).
// LRU is the policy the paper's in-house simulation shows would lift the
// TPC-H hit rate to 78.7–99.3% (§VII-B5); CLOCK is a cheap LRU approximation
// included for the eviction-search ablation (§VII-C).
const (
	PolicyLRC Policy = iota
	PolicyLRU
	PolicyClock
)

func (p Policy) String() string {
	switch p {
	case PolicyLRC:
		return "lrc"
	case PolicyLRU:
		return "lru"
	case PolicyClock:
		return "clock"
	default:
		return "policy?"
	}
}

// replacer is the victim-selection engine. Implementations are not
// goroutine-safe; the driver serializes access.
type replacer interface {
	// Insert records a newly cached slot.
	Insert(slot int)
	// Touch records a hit on a cached slot.
	Touch(slot int)
	// Victim removes and returns the slot to evict (-1 if empty).
	Victim() int
	// Remove deletes a slot (e.g. trimmed) without choosing it.
	Remove(slot int)
	// Len reports tracked slots.
	Len() int
}

func newReplacer(p Policy, slots int) replacer {
	switch p {
	case PolicyLRU:
		return newLRU()
	case PolicyClock:
		return newClock(slots)
	default:
		return newLRC()
	}
}

// lrc is the paper's FIFO-of-caching-order policy.
type lrc struct {
	queue []int
	pos   map[int]bool
}

func newLRC() *lrc { return &lrc{pos: make(map[int]bool)} }

func (l *lrc) Insert(slot int) {
	l.queue = append(l.queue, slot)
	l.pos[slot] = true
}
func (l *lrc) Touch(int) {} // hits do not affect caching order
func (l *lrc) Victim() int {
	for len(l.queue) > 0 {
		s := l.queue[0]
		l.queue = l.queue[1:]
		if l.pos[s] {
			delete(l.pos, s)
			return s
		}
	}
	return -1
}
func (l *lrc) Remove(slot int) { delete(l.pos, slot) } // lazy removal
func (l *lrc) Len() int        { return len(l.pos) }

// lru is a classic move-to-front list.
type lru struct {
	ll  *list.List // front = most recent
	pos map[int]*list.Element
}

func newLRU() *lru { return &lru{ll: list.New(), pos: make(map[int]*list.Element)} }

func (l *lru) Insert(slot int) { l.pos[slot] = l.ll.PushFront(slot) }
func (l *lru) Touch(slot int) {
	if e, ok := l.pos[slot]; ok {
		l.ll.MoveToFront(e)
	}
}
func (l *lru) Victim() int {
	e := l.ll.Back()
	if e == nil {
		return -1
	}
	l.ll.Remove(e)
	s := e.Value.(int)
	delete(l.pos, s)
	return s
}
func (l *lru) Remove(slot int) {
	if e, ok := l.pos[slot]; ok {
		l.ll.Remove(e)
		delete(l.pos, slot)
	}
}
func (l *lru) Len() int { return len(l.pos) }

// clock is the second-chance ring.
type clock struct {
	present []bool
	ref     []bool
	hand    int
	n       int
}

func newClock(slots int) *clock {
	return &clock{present: make([]bool, slots), ref: make([]bool, slots)}
}

func (c *clock) Insert(slot int) {
	if !c.present[slot] {
		c.present[slot] = true
		c.n++
	}
	c.ref[slot] = true
}
func (c *clock) Touch(slot int) {
	if c.present[slot] {
		c.ref[slot] = true
	}
}
func (c *clock) Victim() int {
	if c.n == 0 {
		return -1
	}
	for {
		if c.present[c.hand] {
			if c.ref[c.hand] {
				c.ref[c.hand] = false
			} else {
				s := c.hand
				c.present[s] = false
				c.n--
				c.hand = (c.hand + 1) % len(c.present)
				return s
			}
		}
		c.hand = (c.hand + 1) % len(c.present)
	}
}
func (c *clock) Remove(slot int) {
	if c.present[slot] {
		c.present[slot] = false
		c.n--
	}
}
func (c *clock) Len() int { return c.n }
