package hostcost

import (
	"testing"

	"nvdimmc/internal/sim"
)

func TestWalkGrowsWithFootprint(t *testing.T) {
	m := Default()
	w15 := m.Walk(15 << 30)
	w128 := m.Walk(128 << 30)
	if w128 <= w15 {
		t.Fatalf("walk(128G)=%v <= walk(15G)=%v", w128, w15)
	}
	if m.Walk(0) != 0 {
		t.Fatal("walk(0) != 0")
	}
}

func TestCopyCPUMonotonic(t *testing.T) {
	m := Default()
	prev := sim.Duration(-1)
	for _, n := range []int{64, 128, 1024, 4096, 16384, 65536} {
		c := m.CopyCPU(n)
		if c <= prev {
			t.Fatalf("CopyCPU(%d)=%v not increasing", n, c)
		}
		prev = c
	}
	// Bulk bytes are cheaper per byte than small ones.
	perByteSmall := float64(m.CopyCPU(4096)) / 4096
	perByteAt64K := float64(m.CopyCPU(65536)-m.CopyCPU(4096)) / float64(65536-4096)
	if perByteAt64K >= perByteSmall {
		t.Fatal("bulk copy not cheaper per byte")
	}
}

func TestDispatchWriteExtra(t *testing.T) {
	m := Default()
	r := m.DispatchCPU(4096, false, 1<<30)
	w := m.DispatchCPU(4096, true, 1<<30)
	if w <= r {
		t.Fatal("writes not costlier to dispatch")
	}
}

func TestThreadCPUAnchors(t *testing.T) {
	// The Fig. 8 calibration anchors (see EXPERIMENTS.md): baseline 4 KB op
	// CPU ~1.1 us at a 120 GB footprint; 128 B op ~0.39 us.
	m := Default()
	c4k := m.ThreadCPU(4096, false, 120<<30)
	if c4k < 900*sim.Nanosecond || c4k > 1300*sim.Nanosecond {
		t.Fatalf("4K op CPU = %v, want ~1.1us", c4k)
	}
	c128 := m.ThreadCPU(128, false, 120<<30)
	if c128 < 300*sim.Nanosecond || c128 > 500*sim.Nanosecond {
		t.Fatalf("128B op CPU = %v, want ~0.39us", c128)
	}
}

func TestNvdcSerializedAnchors(t *testing.T) {
	// 4 KB ~0.9 us (caps cached scaling at ~1.1 M ops/s, Fig. 9); 128 B
	// ~0.09 us (allows the 10.9 MIOPS small-access peak, §VII-B4).
	s4k := NvdcSerialized(4096)
	if s4k < 800*sim.Nanosecond || s4k > 1000*sim.Nanosecond {
		t.Fatalf("serialized(4K) = %v, want ~0.89us", s4k)
	}
	s128 := NvdcSerialized(128)
	if s128 < 60*sim.Nanosecond || s128 > 120*sim.Nanosecond {
		t.Fatalf("serialized(128) = %v, want ~0.086us", s128)
	}
	// Multi-page ops amortize.
	s64k := NvdcSerialized(65536)
	if s64k >= 16*s4k {
		t.Fatalf("serialized(64K)=%v not amortized vs 16x4K=%v", s64k, 16*s4k)
	}
}

func TestCopyChunks(t *testing.T) {
	if CopyChunks(64) != 1 || CopyChunks(2048) != 1 {
		t.Fatal("small ops must be one chunk")
	}
	if CopyChunks(4096) != 2 {
		t.Fatalf("4K chunks = %d, want 2", CopyChunks(4096))
	}
	if CopyChunks(1<<20) != 8 {
		t.Fatalf("1M chunks = %d, want capped at 8", CopyChunks(1<<20))
	}
}

func TestLines(t *testing.T) {
	if Lines(1) != 1 || Lines(64) != 1 || Lines(65) != 2 || Lines(4096) != 64 {
		t.Fatal("line math")
	}
}
