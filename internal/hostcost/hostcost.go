// Package hostcost models the host-software cost of one I/O operation
// through the fsdax + libpmem path: the fio dispatch, the TLB/page-walk
// work (a function of the mapped footprint), and the CPU side of the data
// copy. The constants are calibrated against the paper's single-thread
// anchors (Fig. 8 and Fig. 10) and recorded in EXPERIMENTS.md; the *shape*
// of every experiment comes from the simulated machine, these constants
// only pin the software path the simulator does not execute for real.
package hostcost

import (
	"math"

	"nvdimmc/internal/sim"
)

// CacheLine is the coherence granularity.
const CacheLine = 64

// Model holds the host-software cost parameters.
type Model struct {
	// Fixed is the per-op dispatch cost (fio engine + libpmem entry).
	Fixed sim.Duration
	// PerByteSmall is the CPU copy cost per byte up to one page.
	PerByteSmall float64 // picoseconds per byte
	// PerByteBulk is the (cheaper, prefetch-friendly) cost beyond 4 KB.
	PerByteBulk float64 // picoseconds per byte
	// WalkBase scales the TLB/page-walk cost with mapped footprint:
	// walk = WalkBase * log2(footprint/1GB + 1).
	WalkBase sim.Duration
	// WriteExtra is the additional cost of a write op (store + flush
	// pipeline vs load).
	WriteExtra sim.Duration
}

// Default is the calibrated model (see EXPERIMENTS.md, "host cost anchors").
func Default() Model {
	return Model{
		Fixed:        52 * sim.Nanosecond,
		PerByteSmall: 181,
		PerByteBulk:  100,
		WalkBase:     45 * sim.Nanosecond,
		WriteExtra:   100 * sim.Nanosecond,
	}
}

// PageSize is the walk/copy breakpoint.
const PageSize = 4096

// Walk returns the TLB/page-walk component for a mapped footprint.
func (m Model) Walk(footprint int64) sim.Duration {
	if footprint <= 0 {
		return 0
	}
	gb := float64(footprint) / float64(1<<30)
	return sim.Duration(float64(m.WalkBase) * math.Log2(gb+1))
}

// DispatchCPU returns the pre-op CPU time on the issuing thread (engine
// dispatch, TLB/page walk, write setup). The copy cost itself is CopyCPU and
// is interleaved with the bus transfer inside the device op — memcpy IS the
// data movement, so its CPU time and channel occupancy overlap refresh holds
// together rather than as one monolithic block.
func (m Model) DispatchCPU(n int, write bool, footprint int64) sim.Duration {
	d := m.Fixed + m.Walk(footprint)
	if write {
		d += m.WriteExtra
	}
	return d
}

// CopyCPU returns the CPU side of copying n bytes.
func (m Model) CopyCPU(n int) sim.Duration {
	if n <= PageSize {
		return sim.Duration(float64(n) * m.PerByteSmall)
	}
	return sim.Duration(float64(PageSize)*m.PerByteSmall + float64(n-PageSize)*m.PerByteBulk)
}

// CopyChunks splits an n-byte copy into the number of CPU/bus interleaving
// slices the op models use: ~2 KB granules, at most 8. The granule is the
// knob balancing how exposed an op is to refresh holds: finer slicing
// overstates the stall (a real core's memory-level parallelism rides
// through part of a hold), coarser slicing lets the closed loop dodge
// refreshes entirely; 2 KB lands the Fig. 13 refresh-cost curve in the
// paper's band.
func CopyChunks(n int) int {
	c := n / 2048
	if c < 1 {
		c = 1
	}
	if c > 8 {
		c = 8
	}
	return c
}

// ThreadCPU returns the full per-op CPU time (dispatch + copy); kept for
// callers that do not interleave.
func (m Model) ThreadCPU(n int, write bool, footprint int64) sim.Duration {
	return m.DispatchCPU(n, write, footprint) + m.CopyCPU(n)
}

// Lines returns the cacheline count of an n-byte access.
func Lines(n int) int { return (n + CacheLine - 1) / CacheLine }

// NvdcSerialized returns the nvdc driver's per-op serialized cost (radix
// lookup under the device lock plus per-line coherence bookkeeping). It is
// what caps NVDC-Cached thread scaling at roughly half the baseline's
// (Fig. 9) while staying small for sub-page ops (the 10.9 MIOPS @128 B
// observation, §VII-B4). First-page lines dominate; later pages amortize.
func NvdcSerialized(n int) sim.Duration {
	lines := Lines(n)
	firstPageLines := lines
	if firstPageLines > PageSize/CacheLine {
		firstPageLines = PageSize / CacheLine
	}
	extraPages := (n - 1) / PageSize // pages beyond the first
	if extraPages < 0 {
		extraPages = 0
	}
	return 60*sim.Nanosecond +
		sim.Duration(firstPageLines)*13*sim.Nanosecond +
		sim.Duration(extraPages)*200*sim.Nanosecond
}
