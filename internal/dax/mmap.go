package dax

import "fmt"

// pte is one page-table entry of a mapping: the physical (DRAM) address
// currently backing a file page.
type pte struct {
	phys     int64
	valid    bool
	writable bool
}

// TLB is a small fully-associative translation buffer with FIFO replacement
// (functional model: hit/miss accounting; latency is part of the hostcost
// walk term).
type TLB struct {
	entries  map[int64]int64 // file page -> phys
	order    []int64
	capacity int
	hits     uint64
	misses   uint64
}

// NewTLB returns a TLB with the given entry count.
func NewTLB(entries int) *TLB {
	if entries < 1 {
		entries = 1
	}
	return &TLB{entries: make(map[int64]int64), capacity: entries}
}

// Lookup returns the cached translation.
func (t *TLB) Lookup(page int64) (int64, bool) {
	phys, ok := t.entries[page]
	if ok {
		t.hits++
	} else {
		t.misses++
	}
	return phys, ok
}

// Insert caches a translation, evicting FIFO when full.
func (t *TLB) Insert(page, phys int64) {
	if _, ok := t.entries[page]; !ok {
		if len(t.entries) >= t.capacity {
			victim := t.order[0]
			t.order = t.order[1:]
			delete(t.entries, victim)
		}
		t.order = append(t.order, page)
	}
	t.entries[page] = phys
}

// Invalidate drops one translation (PTE shootdown).
func (t *TLB) Invalidate(page int64) {
	if _, ok := t.entries[page]; ok {
		delete(t.entries, page)
		for i, p := range t.order {
			if p == page {
				t.order = append(t.order[:i], t.order[i+1:]...)
				break
			}
		}
	}
}

// Stats returns hit and miss counts.
func (t *TLB) Stats() (hits, misses uint64) { return t.hits, t.misses }

// Mapping is an mmap of a whole DAX file into an address space: PTEs plus a
// TLB in front of them. Faults route through the filesystem to the driver's
// device_access (Fig. 6).
type Mapping struct {
	file *File
	tlb  *TLB
	ptes map[int64]pte

	faults      uint64
	pteHits     uint64
	writeUpgrds uint64
}

// Mmap maps the file. tlbEntries sizes the TLB (64 is a typical L1 DTLB).
func (f *File) Mmap(tlbEntries int) *Mapping {
	return &Mapping{
		file: f,
		tlb:  NewTLB(tlbEntries),
		ptes: make(map[int64]pte),
	}
}

// Stats reports fault-path counters.
func (m *Mapping) Stats() (faults, pteHits, tlbHits, tlbMisses uint64) {
	h, mi := m.tlb.Stats()
	return m.faults, m.pteHits, h, mi
}

// Translate resolves a byte offset in the file to the physical address
// backing it, faulting the page in if needed. done receives the physical
// address of the requested byte.
//
// Path (Fig. 6): TLB hit -> done immediately. TLB miss + valid PTE (page
// walk) -> refill TLB. Invalid PTE -> page fault -> filesystem block lookup
// -> driver device_access (cachefill et al.) -> install PTE -> done.
func (m *Mapping) Translate(off int64, write bool, done func(phys int64, err error)) {
	if off < 0 || off >= m.file.Size() {
		done(0, fmt.Errorf("dax: offset %d outside file %q (%d bytes)", off, m.file.name, m.file.Size()))
		return
	}
	page := off / PageSize
	rest := off % PageSize

	if phys, ok := m.tlb.Lookup(page); ok {
		if e := m.ptes[page]; e.valid && (!write || e.writable) {
			done(phys+rest, nil)
			return
		}
		// Stale TLB entry (invalidated PTE or write upgrade needed).
		m.tlb.Invalidate(page)
	}
	if e, ok := m.ptes[page]; ok && e.valid && (!write || e.writable) {
		m.pteHits++
		m.tlb.Insert(page, e.phys)
		done(e.phys+rest, nil)
		return
	}

	// Page fault.
	m.faults++
	devPage, err := m.file.devPageOf(page)
	if err != nil {
		done(0, err)
		return
	}
	if e, ok := m.ptes[page]; ok && e.valid && write && !e.writable {
		m.writeUpgrds++
		_ = e
	}
	m.file.fs.dev.Fault(devPage, write, func(physAddr int64) {
		m.ptes[page] = pte{phys: physAddr, valid: true, writable: write || m.ptes[page].writable}
		m.tlb.Insert(page, physAddr)
		done(physAddr+rest, nil)
	})
}

// InvalidatePage drops the PTE and TLB entry for a file page (the driver
// does this when it evicts the backing slot).
func (m *Mapping) InvalidatePage(page int64) {
	if e, ok := m.ptes[page]; ok {
		e.valid = false
		m.ptes[page] = e
	}
	m.tlb.Invalidate(page)
}
