package dax

import (
	"testing"
	"testing/quick"
)

// fakeDev is a synchronous Device for unit tests: device page p is "backed"
// at phys 0x10000 + p*PageSize; faults and trims are counted.
type fakeDev struct {
	capacity int64
	faults   map[int64]int
	trims    map[int64]int
}

func newFakeDev(pages int64) *fakeDev {
	return &fakeDev{capacity: pages, faults: map[int64]int{}, trims: map[int64]int{}}
}

func (d *fakeDev) CapacityPages() int64 { return d.capacity }
func (d *fakeDev) Fault(lpn int64, write bool, done func(int64)) {
	d.faults[lpn]++
	done(0x10000 + lpn*PageSize)
}
func (d *fakeDev) Trim(lpn int64) { d.trims[lpn]++ }

func TestCreateOpenRemove(t *testing.T) {
	dev := newFakeDev(256)
	fs := Mount(dev)
	f, err := fs.Create("db.dat", 10*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if f.Pages() != 10 {
		t.Fatalf("pages = %d", f.Pages())
	}
	if fs.FreePages() != 246 {
		t.Fatalf("free = %d", fs.FreePages())
	}
	if _, err := fs.Open("db.dat"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("db.dat", PageSize); err == nil {
		t.Fatal("duplicate create accepted")
	}
	if err := fs.Remove("db.dat"); err != nil {
		t.Fatal(err)
	}
	if fs.FreePages() != 256 {
		t.Fatalf("free after remove = %d", fs.FreePages())
	}
	if len(dev.trims) != 10 {
		t.Fatalf("trimmed %d pages, want 10", len(dev.trims))
	}
	if _, err := fs.Open("db.dat"); err == nil {
		t.Fatal("removed file opened")
	}
}

func TestSizeRoundsToPages(t *testing.T) {
	fs := Mount(newFakeDev(16))
	f, err := fs.Create("x", 100) // sub-page
	if err != nil {
		t.Fatal(err)
	}
	if f.Pages() != 1 || f.Size() != PageSize {
		t.Fatalf("pages=%d size=%d", f.Pages(), f.Size())
	}
}

func TestAllocationExhaustion(t *testing.T) {
	fs := Mount(newFakeDev(8))
	if _, err := fs.Create("big", 9*PageSize); err == nil {
		t.Fatal("over-allocation accepted")
	}
	if fs.FreePages() != 8 {
		t.Fatal("failed create leaked pages")
	}
}

func TestExtendAndFragmentation(t *testing.T) {
	fs := Mount(newFakeDev(32))
	a, _ := fs.Create("a", 8*PageSize)
	if _, err := fs.Create("b", 8*PageSize); err != nil {
		t.Fatal(err)
	}
	// Removing a leaves a hole; c spans the hole + tail (two extents).
	if err := fs.Remove("a"); err != nil {
		t.Fatal(err)
	}
	_ = a
	c, err := fs.Create("c", 20*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.extents) < 2 {
		t.Fatalf("expected a fragmented file, got %d extent(s)", len(c.extents))
	}
	// Every page must still translate to a unique device page.
	seen := map[int64]bool{}
	for p := int64(0); p < c.Pages(); p++ {
		dp, err := c.devPageOf(p)
		if err != nil {
			t.Fatal(err)
		}
		if seen[dp] {
			t.Fatalf("device page %d mapped twice", dp)
		}
		seen[dp] = true
	}
	if err := c.Extend(4 * PageSize); err != nil {
		t.Fatal(err)
	}
	if c.Pages() != 24 {
		t.Fatalf("pages after extend = %d", c.Pages())
	}
}

func TestTranslateFaultsOncePerPage(t *testing.T) {
	dev := newFakeDev(64)
	fs := Mount(dev)
	f, _ := fs.Create("f", 4*PageSize)
	m := f.Mmap(16)
	for round := 0; round < 3; round++ {
		for p := int64(0); p < 4; p++ {
			done := false
			m.Translate(p*PageSize+100, false, func(phys int64, err error) {
				if err != nil {
					t.Fatal(err)
				}
				dp, _ := f.devPageOf(p)
				if phys != 0x10000+dp*PageSize+100 {
					t.Fatalf("phys = %#x", phys)
				}
				done = true
			})
			if !done {
				t.Fatal("translate did not complete")
			}
		}
	}
	faults, _, tlbHits, _ := m.Stats()
	if faults != 4 {
		t.Fatalf("faults = %d, want 4 (once per page)", faults)
	}
	if tlbHits != 8 {
		t.Fatalf("tlb hits = %d, want 8 (rounds 2 and 3)", tlbHits)
	}
}

func TestTranslateOutOfRange(t *testing.T) {
	fs := Mount(newFakeDev(8))
	f, _ := fs.Create("f", PageSize)
	m := f.Mmap(4)
	gotErr := false
	m.Translate(2*PageSize, false, func(_ int64, err error) { gotErr = err != nil })
	if !gotErr {
		t.Fatal("out-of-file translate accepted")
	}
}

func TestInvalidatePageRefaults(t *testing.T) {
	dev := newFakeDev(8)
	fs := Mount(dev)
	f, _ := fs.Create("f", PageSize)
	m := f.Mmap(4)
	m.Translate(0, false, func(int64, error) {})
	m.InvalidatePage(0)
	m.Translate(0, false, func(int64, error) {})
	faults, _, _, _ := m.Stats()
	if faults != 2 {
		t.Fatalf("faults = %d, want 2 (refault after shootdown)", faults)
	}
}

func TestTLBEvictionFIFO(t *testing.T) {
	tlb := NewTLB(2)
	tlb.Insert(1, 100)
	tlb.Insert(2, 200)
	tlb.Insert(3, 300) // evicts 1
	if _, ok := tlb.Lookup(1); ok {
		t.Fatal("FIFO victim still present")
	}
	if v, ok := tlb.Lookup(3); !ok || v != 300 {
		t.Fatal("fresh entry lost")
	}
}

func TestTLBInvalidate(t *testing.T) {
	tlb := NewTLB(4)
	tlb.Insert(1, 100)
	tlb.Invalidate(1)
	if _, ok := tlb.Lookup(1); ok {
		t.Fatal("invalidated entry still present")
	}
	tlb.Invalidate(99) // no-op must not panic
}

// Property: any sequence of create/remove keeps free-page accounting exact
// and never double-allocates a device page.
func TestAllocatorProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		dev := newFakeDev(128)
		fs := Mount(dev)
		names := []string{}
		for i, op := range ops {
			if op%3 == 0 && len(names) > 0 {
				fs.Remove(names[0])
				names = names[1:]
				continue
			}
			name := fname(i)
			pages := int64(op%7 + 1)
			if _, err := fs.Create(name, pages*PageSize); err == nil {
				names = append(names, name)
			}
		}
		// No page may belong to two live files.
		seen := map[int64]bool{}
		var used int64
		for _, name := range names {
			file, err := fs.Open(name)
			if err != nil {
				return false
			}
			for p := int64(0); p < file.Pages(); p++ {
				dp, err := file.devPageOf(p)
				if err != nil || seen[dp] {
					return false
				}
				seen[dp] = true
				used++
			}
		}
		return fs.FreePages()+used == 128
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func fname(i int) string {
	return "f" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+(i/676)%26))
}
