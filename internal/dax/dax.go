// Package dax models the Direct Access path of §II-A: a DAX-aware
// filesystem (the XFS-dax stand-in) over a byte-addressable block device,
// plus the memory-mapping machinery an application actually touches —
// extents, page tables, a TLB, and the page-fault path that ends in the
// driver's device_access entry point (Fig. 6).
//
// The traditional mmap() path would bounce 4 KB block I/O through the page
// cache; DAX instead installs PTEs that point straight at the device's
// memory, so a fault happens only on first touch (or after invalidation)
// and every later access is a TLB/PTE hit.
package dax

import (
	"fmt"
	"sort"
)

// PageSize is the fault granularity.
const PageSize = 4096

// Device is the block device under the filesystem. Fault is the
// device_access entry point: it makes the device page resident and reports
// the physical (DRAM) address serving it.
type Device interface {
	CapacityPages() int64
	Fault(lpn int64, write bool, done func(physAddr int64))
	// Trim releases a device page (file deletion).
	Trim(lpn int64)
}

// extent is a run of contiguous device pages backing a file range.
type extent struct {
	fileOff int64 // in pages
	devPage int64
	pages   int64
}

// File is one DAX file.
type File struct {
	fs      *FS
	name    string
	pages   int64
	extents []extent
}

// Name returns the file name.
func (f *File) Name() string { return f.name }

// Pages returns the file size in pages.
func (f *File) Pages() int64 { return f.pages }

// Size returns the file size in bytes.
func (f *File) Size() int64 { return f.pages * PageSize }

// devPageOf translates a file page to its device page.
func (f *File) devPageOf(filePage int64) (int64, error) {
	if filePage < 0 || filePage >= f.pages {
		return 0, fmt.Errorf("dax: page %d beyond file %q (%d pages)", filePage, f.name, f.pages)
	}
	// Extents are sorted by fileOff.
	i := sort.Search(len(f.extents), func(i int) bool {
		return f.extents[i].fileOff+f.extents[i].pages > filePage
	})
	e := f.extents[i]
	return e.devPage + (filePage - e.fileOff), nil
}

// FS is a mounted DAX filesystem.
type FS struct {
	dev   Device
	files map[string]*File
	// Free device-page runs, kept sorted by start.
	free []extent
}

// Mount formats and mounts a filesystem over the whole device.
func Mount(dev Device) *FS {
	return &FS{
		dev:   dev,
		files: make(map[string]*File),
		free:  []extent{{devPage: 0, pages: dev.CapacityPages()}},
	}
}

// FreePages reports unallocated device pages.
func (fs *FS) FreePages() int64 {
	var n int64
	for _, e := range fs.free {
		n += e.pages
	}
	return n
}

// allocate carves pages device pages from the free runs (first fit,
// possibly as several extents).
func (fs *FS) allocate(pages int64, fileOff int64) ([]extent, error) {
	if pages > fs.FreePages() {
		return nil, fmt.Errorf("dax: need %d pages, %d free", pages, fs.FreePages())
	}
	var got []extent
	for pages > 0 {
		run := &fs.free[0]
		n := run.pages
		if n > pages {
			n = pages
		}
		got = append(got, extent{fileOff: fileOff, devPage: run.devPage, pages: n})
		run.devPage += n
		run.pages -= n
		if run.pages == 0 {
			fs.free = fs.free[1:]
		}
		fileOff += n
		pages -= n
	}
	return got, nil
}

// release returns extents to the free pool (coalescing adjacent runs) and
// trims the device.
func (fs *FS) release(exts []extent) {
	for _, e := range exts {
		for p := int64(0); p < e.pages; p++ {
			fs.dev.Trim(e.devPage + p)
		}
		fs.free = append(fs.free, extent{devPage: e.devPage, pages: e.pages})
	}
	sort.Slice(fs.free, func(i, j int) bool { return fs.free[i].devPage < fs.free[j].devPage })
	// Coalesce.
	out := fs.free[:0]
	for _, e := range fs.free {
		if len(out) > 0 && out[len(out)-1].devPage+out[len(out)-1].pages == e.devPage {
			out[len(out)-1].pages += e.pages
			continue
		}
		out = append(out, e)
	}
	fs.free = out
}

// Create makes a file of the given size (in bytes, rounded up to pages).
func (fs *FS) Create(name string, size int64) (*File, error) {
	if _, exists := fs.files[name]; exists {
		return nil, fmt.Errorf("dax: file %q exists", name)
	}
	pages := (size + PageSize - 1) / PageSize
	exts, err := fs.allocate(pages, 0)
	if err != nil {
		return nil, err
	}
	f := &File{fs: fs, name: name, pages: pages, extents: exts}
	fs.files[name] = f
	return f, nil
}

// Open returns an existing file.
func (fs *FS) Open(name string) (*File, error) {
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("dax: no file %q", name)
	}
	return f, nil
}

// Remove deletes a file, trimming its device pages.
func (fs *FS) Remove(name string) error {
	f, ok := fs.files[name]
	if !ok {
		return fmt.Errorf("dax: no file %q", name)
	}
	fs.release(f.extents)
	delete(fs.files, name)
	f.extents = nil
	f.pages = 0
	return nil
}

// Extend grows a file by size bytes (page rounded).
func (f *File) Extend(size int64) error {
	pages := (size + PageSize - 1) / PageSize
	exts, err := f.fs.allocate(pages, f.pages)
	if err != nil {
		return err
	}
	f.extents = append(f.extents, exts...)
	f.pages += pages
	return nil
}
