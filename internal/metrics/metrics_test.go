package metrics

import (
	"testing"

	"nvdimmc/internal/sim"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Record(sim.Duration(i) * sim.Microsecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != sim.Microsecond || h.Max() != 100*sim.Microsecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	mean := h.Mean()
	if mean < 50*sim.Microsecond || mean > 51*sim.Microsecond {
		t.Fatalf("mean = %v, want ~50.5us", mean)
	}
	p50 := h.Percentile(50)
	if p50 < 45*sim.Microsecond || p50 > 56*sim.Microsecond {
		t.Fatalf("p50 = %v", p50)
	}
	if h.Percentile(100) != h.Max() {
		t.Fatalf("p100 = %v != max %v", h.Percentile(100), h.Max())
	}
}

// TestHistogramPercentileExact pins Percentile against hand-computed values
// on known sample sets: interpolation between ranks, exact endpoints, and no
// low bias at the tail (the old truncating index returned s[floor(rank)]).
func TestHistogramPercentileExact(t *testing.T) {
	// 1..100: rank(p) = p/100 * 99.
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Record(sim.Duration(i))
	}
	cases := []struct {
		p    float64
		want sim.Duration
	}{
		{0, 1},
		{100, 100},
		{50, 51},    // rank 49.5 -> 50 + round(0.5*1)
		{25, 26},    // rank 24.75 -> 25 + round(0.75*1)
		{99, 99},    // rank 98.01 -> 99 + round(0.01*1)
		{75, 75},    // rank 74.25 -> 75 + round(0.25*1)
		{99.9, 100}, // rank 98.901 -> 99 + round(0.901*1)
	}
	for _, c := range cases {
		if got := h.Percentile(c.p); got != c.want {
			t.Errorf("p%v = %v, want %v", c.p, got, c.want)
		}
	}

	// Four widely spaced samples: the tail must interpolate toward the max,
	// not truncate down a full gap.
	h2 := NewHistogram()
	for _, d := range []sim.Duration{10, 20, 30, 40} {
		h2.Record(d)
	}
	if got := h2.Percentile(99.9); got != 40 { // rank 2.997 -> 30 + round(0.997*10)
		t.Errorf("p99.9 of {10,20,30,40} = %v, want 40 (old nearest-rank gave 30)", got)
	}
	if got := h2.Percentile(50); got != 25 { // rank 1.5 -> 20 + round(0.5*10)
		t.Errorf("p50 of {10,20,30,40} = %v, want 25", got)
	}
}

// TestHistogramPercentileCacheInvalidation: the sorted cache must be rebuilt
// after new observations, including reservoir replacements once full.
func TestHistogramPercentileCacheInvalidation(t *testing.T) {
	h := NewHistogram()
	h.Record(10)
	if got := h.Percentile(100); got != 10 {
		t.Fatalf("p100 = %v, want 10", got)
	}
	h.Record(99)
	if got := h.Percentile(100); got != 99 {
		t.Fatalf("p100 after new sample = %v, want 99 (stale sorted cache?)", got)
	}
	// Fill the reservoir and keep recording: replacements must also
	// invalidate. Record a constant so any replacement is observable.
	for i := 0; i < 10*reservoirSize; i++ {
		h.Record(7)
	}
	if got := h.Percentile(50); got != 7 {
		t.Fatalf("p50 after flooding with 7s = %v, want 7", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Mean() != 0 || h.Min() != 0 || h.Percentile(99) != 0 {
		t.Fatal("empty histogram not zeroed")
	}
}

func TestHistogramReservoirBounded(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 100000; i++ {
		h.Record(sim.Duration(i))
	}
	if len(h.samples) > reservoirSize {
		t.Fatalf("reservoir grew to %d", len(h.samples))
	}
	if h.Count() != 100000 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestMeter(t *testing.T) {
	m := NewMeter(0)
	m.Record(sim.Time(sim.Millisecond), 4096)
	m.Record(sim.Time(2*sim.Millisecond), 4096)
	if m.Ops() != 2 || m.Bytes() != 8192 {
		t.Fatalf("ops/bytes = %d/%d", m.Ops(), m.Bytes())
	}
	// 8192 B over 2 ms = 4.096 MB/s.
	if bw := m.BandwidthMBps(); bw < 4.0 || bw > 4.2 {
		t.Fatalf("bandwidth = %v", bw)
	}
	if iops := m.IOPS(); iops < 999 || iops > 1001 {
		t.Fatalf("IOPS = %v", iops)
	}
	if m.KIOPS() != m.IOPS()/1000 {
		t.Fatal("KIOPS mismatch")
	}
}

func TestMeterFinishExtends(t *testing.T) {
	m := NewMeter(0)
	m.Record(sim.Time(sim.Millisecond), 1000)
	m.Finish(sim.Time(2 * sim.Millisecond))
	if m.Elapsed() != 2*sim.Millisecond {
		t.Fatalf("elapsed = %v", m.Elapsed())
	}
}

func TestMeterEmpty(t *testing.T) {
	m := NewMeter(0)
	if m.IOPS() != 0 || m.BandwidthMBps() != 0 {
		t.Fatal("empty meter reports throughput")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Add(0.1, 10)
	s.Add(0.2, 30)
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.Mean() != 20 {
		t.Fatalf("mean = %v", s.Mean())
	}
	var empty Series
	if empty.Mean() != 0 {
		t.Fatal("empty series mean")
	}
}

// TestCountersLazySort: registration order must not leak into reads, and
// names registered after a read must still come back sorted.
func TestCountersLazySort(t *testing.T) {
	c := NewCounters()
	c.Inc("zeta")
	c.Inc("alpha")
	c.Add("mid", 3)
	got := c.Names()
	if len(got) != 3 || got[0] != "alpha" || got[1] != "mid" || got[2] != "zeta" {
		t.Fatalf("Names() = %v, want sorted", got)
	}
	// Register more after the sort; the next read must re-sort.
	c.Inc("aardvark")
	c.Inc("beta")
	got = c.Names()
	want := []string{"aardvark", "alpha", "beta", "mid", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() after late registration = %v, want %v", got, want)
		}
	}
	if s := c.String(); s != "{aardvark=1 alpha=1 beta=1 mid=3 zeta=1}" {
		t.Fatalf("String() = %q", s)
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram()
	h.Record(sim.Microsecond)
	if h.String() == "" {
		t.Fatal("empty string")
	}
}
