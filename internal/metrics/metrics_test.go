package metrics

import (
	"testing"

	"nvdimmc/internal/sim"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Record(sim.Duration(i) * sim.Microsecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != sim.Microsecond || h.Max() != 100*sim.Microsecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	mean := h.Mean()
	if mean < 50*sim.Microsecond || mean > 51*sim.Microsecond {
		t.Fatalf("mean = %v, want ~50.5us", mean)
	}
	p50 := h.Percentile(50)
	if p50 < 45*sim.Microsecond || p50 > 56*sim.Microsecond {
		t.Fatalf("p50 = %v", p50)
	}
	if h.Percentile(100) != h.Max() {
		t.Fatalf("p100 = %v != max %v", h.Percentile(100), h.Max())
	}
}

// TestHistogramPercentileExact pins Percentile against hand-computed values
// on known sample sets: interpolation between ranks, exact endpoints, and no
// low bias at the tail (the old truncating index returned s[floor(rank)]).
func TestHistogramPercentileExact(t *testing.T) {
	// 1..100: rank(p) = p/100 * 99.
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Record(sim.Duration(i))
	}
	cases := []struct {
		p    float64
		want sim.Duration
	}{
		{0, 1},
		{100, 100},
		{50, 51},    // rank 49.5 -> 50 + round(0.5*1)
		{25, 26},    // rank 24.75 -> 25 + round(0.75*1)
		{99, 99},    // rank 98.01 -> 99 + round(0.01*1)
		{75, 75},    // rank 74.25 -> 75 + round(0.25*1)
		{99.9, 100}, // rank 98.901 -> 99 + round(0.901*1)
	}
	for _, c := range cases {
		if got := h.Percentile(c.p); got != c.want {
			t.Errorf("p%v = %v, want %v", c.p, got, c.want)
		}
	}

	// Four widely spaced samples: the tail must interpolate toward the max,
	// not truncate down a full gap.
	h2 := NewHistogram()
	for _, d := range []sim.Duration{10, 20, 30, 40} {
		h2.Record(d)
	}
	if got := h2.Percentile(99.9); got != 40 { // rank 2.997 -> 30 + round(0.997*10)
		t.Errorf("p99.9 of {10,20,30,40} = %v, want 40 (old nearest-rank gave 30)", got)
	}
	if got := h2.Percentile(50); got != 25 { // rank 1.5 -> 20 + round(0.5*10)
		t.Errorf("p50 of {10,20,30,40} = %v, want 25", got)
	}
}

// TestHistogramPercentileCacheInvalidation: the sorted cache must be rebuilt
// after new observations, including reservoir replacements once full.
func TestHistogramPercentileCacheInvalidation(t *testing.T) {
	h := NewHistogram()
	h.Record(10)
	if got := h.Percentile(100); got != 10 {
		t.Fatalf("p100 = %v, want 10", got)
	}
	h.Record(99)
	if got := h.Percentile(100); got != 99 {
		t.Fatalf("p100 after new sample = %v, want 99 (stale sorted cache?)", got)
	}
	// Fill the reservoir and keep recording: replacements must also
	// invalidate. Record a constant so any replacement is observable.
	for i := 0; i < 10*reservoirSize; i++ {
		h.Record(7)
	}
	if got := h.Percentile(50); got != 7 {
		t.Fatalf("p50 after flooding with 7s = %v, want 7", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Mean() != 0 || h.Min() != 0 || h.Percentile(99) != 0 {
		t.Fatal("empty histogram not zeroed")
	}
}

func TestHistogramReservoirBounded(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 100000; i++ {
		h.Record(sim.Duration(i))
	}
	if len(h.samples) > reservoirSize {
		t.Fatalf("reservoir grew to %d", len(h.samples))
	}
	if h.Count() != 100000 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestMeter(t *testing.T) {
	m := NewMeter(0)
	m.Record(sim.Time(sim.Millisecond), 4096)
	m.Record(sim.Time(2*sim.Millisecond), 4096)
	if m.Ops() != 2 || m.Bytes() != 8192 {
		t.Fatalf("ops/bytes = %d/%d", m.Ops(), m.Bytes())
	}
	// 8192 B over 2 ms = 4.096 MB/s.
	if bw := m.BandwidthMBps(); bw < 4.0 || bw > 4.2 {
		t.Fatalf("bandwidth = %v", bw)
	}
	if iops := m.IOPS(); iops < 999 || iops > 1001 {
		t.Fatalf("IOPS = %v", iops)
	}
	if m.KIOPS() != m.IOPS()/1000 {
		t.Fatal("KIOPS mismatch")
	}
}

func TestMeterFinishExtends(t *testing.T) {
	m := NewMeter(0)
	m.Record(sim.Time(sim.Millisecond), 1000)
	m.Finish(sim.Time(2 * sim.Millisecond))
	if m.Elapsed() != 2*sim.Millisecond {
		t.Fatalf("elapsed = %v", m.Elapsed())
	}
}

func TestMeterEmpty(t *testing.T) {
	m := NewMeter(0)
	if m.IOPS() != 0 || m.BandwidthMBps() != 0 {
		t.Fatal("empty meter reports throughput")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Add(0.1, 10)
	s.Add(0.2, 30)
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.Mean() != 20 {
		t.Fatalf("mean = %v", s.Mean())
	}
	var empty Series
	if empty.Mean() != 0 {
		t.Fatal("empty series mean")
	}
}

// TestCountersLazySort: registration order must not leak into reads, and
// names registered after a read must still come back sorted.
func TestCountersLazySort(t *testing.T) {
	c := NewCounters()
	c.Inc("zeta")
	c.Inc("alpha")
	c.Add("mid", 3)
	got := c.Names()
	if len(got) != 3 || got[0] != "alpha" || got[1] != "mid" || got[2] != "zeta" {
		t.Fatalf("Names() = %v, want sorted", got)
	}
	// Register more after the sort; the next read must re-sort.
	c.Inc("aardvark")
	c.Inc("beta")
	got = c.Names()
	want := []string{"aardvark", "alpha", "beta", "mid", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() after late registration = %v, want %v", got, want)
		}
	}
	if s := c.String(); s != "{aardvark=1 alpha=1 beta=1 mid=3 zeta=1}" {
		t.Fatalf("String() = %q", s)
	}
}

// TestHistogramMerge: exact fields (count, sum, min, max) combine exactly,
// percentiles of the merged reservoir land between the inputs, and merging
// into an empty histogram copies the other side.
func TestHistogramMerge(t *testing.T) {
	a := NewHistogram()
	b := NewHistogram()
	for i := 1; i <= 1000; i++ {
		a.Record(sim.Duration(i) * sim.Microsecond) // 1..1000 us
		b.Record(sim.Duration(i+2000) * sim.Microsecond)
	}
	a.Merge(b)
	if a.Count() != 2000 {
		t.Fatalf("count = %d, want 2000", a.Count())
	}
	if a.Min() != sim.Microsecond || a.Max() != 3000*sim.Microsecond {
		t.Fatalf("min/max = %v/%v", a.Min(), a.Max())
	}
	wantMean := (1000*1001/2 + 1000*2001+1000*1001/2) / 2000
	if got := a.Mean().Microseconds(); got < float64(wantMean)*0.99 || got > float64(wantMean)*1.01 {
		t.Fatalf("mean = %vus, want ~%dus", got, wantMean)
	}
	// b's samples all exceed a's, so p50 of the merge must sit at the seam.
	if p := a.Percentile(50); p < 900*sim.Microsecond || p > 2100*sim.Microsecond {
		t.Fatalf("merged p50 = %v", p)
	}
	if p := a.Percentile(99); p < 2500*sim.Microsecond {
		t.Fatalf("merged p99 = %v, want in b's upper range", p)
	}

	empty := NewHistogram()
	empty.Merge(a)
	if empty.Count() != a.Count() || empty.Max() != a.Max() || empty.Min() != a.Min() {
		t.Fatal("merge into empty did not copy")
	}
	before := a.Count()
	a.Merge(NewHistogram())
	if a.Count() != before {
		t.Fatal("merging an empty histogram changed the receiver")
	}
}

// TestHistogramMergeReservoirBounded: merging two full reservoirs stays
// within reservoirSize and keeps proportional representation.
func TestHistogramMergeReservoirBounded(t *testing.T) {
	a := NewHistogram()
	b := NewHistogram()
	for i := 0; i < 3*reservoirSize; i++ {
		a.Record(10) // 3R observations of 10
	}
	for i := 0; i < reservoirSize; i++ {
		b.Record(1000) // R observations of 1000
	}
	a.Merge(b)
	if len(a.samples) > reservoirSize {
		t.Fatalf("merged reservoir grew to %d", len(a.samples))
	}
	// a carried 3/4 of the observations: the merged median must be a's value
	// and the tail must still see b's.
	if p := a.Percentile(50); p != 10 {
		t.Fatalf("merged p50 = %v, want 10", p)
	}
	if p := a.Percentile(90); p != 1000 {
		t.Fatalf("merged p90 = %v, want 1000 (b underrepresented)", p)
	}
}

// TestHistogramMergeDeterministic: merging the same inputs twice yields
// identical reservoirs (no RNG draw involved).
func TestHistogramMergeDeterministic(t *testing.T) {
	build := func() *Histogram {
		a := NewHistogram()
		b := NewHistogram()
		for i := 0; i < 2*reservoirSize; i++ {
			a.Record(sim.Duration(i))
			b.Record(sim.Duration(i * 7))
		}
		a.Merge(b)
		return a
	}
	x, y := build(), build()
	for _, p := range []float64{1, 25, 50, 75, 99, 99.9} {
		if x.Percentile(p) != y.Percentile(p) {
			t.Fatalf("p%v diverged: %v vs %v", p, x.Percentile(p), y.Percentile(p))
		}
	}
}

// TestMeterMerge: the merged span is min(start)/max(end) — not the elapsed
// sum, which would double-count the overlap of concurrently measuring
// channels — and ops/bytes add.
func TestMeterMerge(t *testing.T) {
	a := NewMeter(sim.Time(1 * sim.Millisecond))
	a.Record(sim.Time(3*sim.Millisecond), 1000)
	b := NewMeter(sim.Time(2 * sim.Millisecond))
	b.Record(sim.Time(5*sim.Millisecond), 3000)
	a.Merge(b)
	if a.Ops() != 2 || a.Bytes() != 4000 {
		t.Fatalf("ops/bytes = %d/%d", a.Ops(), a.Bytes())
	}
	// Span must be [1ms, 5ms] = 4ms, not (3-1)+(5-2) = 5ms.
	if a.Elapsed() != 4*sim.Millisecond {
		t.Fatalf("elapsed = %v, want 4ms (min start / max end)", a.Elapsed())
	}
	// 4000 B over 4 ms = 1 MB/s.
	if bw := a.BandwidthMBps(); bw < 0.99 || bw > 1.01 {
		t.Fatalf("bandwidth = %v", bw)
	}

	// An idle meter (started but never recorded) must not drag the span.
	idle := NewMeter(0)
	a.Merge(idle)
	if a.Elapsed() != 4*sim.Millisecond {
		t.Fatalf("idle merge moved the span: %v", a.Elapsed())
	}
	// Merging into an empty meter copies the live one.
	e := NewMeter(0)
	e.Merge(a)
	if e.Ops() != 2 || e.Elapsed() != 4*sim.Millisecond {
		t.Fatalf("empty merge: ops=%d elapsed=%v", e.Ops(), e.Elapsed())
	}
}

// TestCountersMerge: values add, names register, receiver order is sorted.
func TestCountersMerge(t *testing.T) {
	a := NewCounters()
	a.Add("shared", 2)
	a.Inc("only-a")
	b := NewCounters()
	b.Add("shared", 3)
	b.Add("only-b", 7)
	a.Merge(b)
	if a.Get("shared") != 5 || a.Get("only-a") != 1 || a.Get("only-b") != 7 {
		t.Fatalf("merged = %v", a)
	}
	if s := a.String(); s != "{only-a=1 only-b=7 shared=5}" {
		t.Fatalf("String() = %q", s)
	}
	if b.Get("shared") != 3 {
		t.Fatal("merge modified the source")
	}
	a.Merge(nil) // must be a no-op
	if a.Get("shared") != 5 {
		t.Fatal("nil merge changed receiver")
	}
}

func TestCountersMergePrefixed(t *testing.T) {
	a := NewCounters()
	a.Add("shared", 2)
	b := NewCounters()
	b.Add("shared", 3)
	b.Add("only-b", 7)
	a.MergePrefixed("s1/", b)
	if a.Get("shared") != 2 || a.Get("s1/shared") != 3 || a.Get("s1/only-b") != 7 {
		t.Fatalf("merged = %v", a)
	}
	if s := a.String(); s != "{s1/only-b=7 s1/shared=3 shared=2}" {
		t.Fatalf("String() = %q", s)
	}
	if b.Get("shared") != 3 {
		t.Fatal("prefixed merge modified the source")
	}
	a.MergePrefixed("s2/", nil) // must be a no-op
	if len(a.Names()) != 3 {
		t.Fatal("nil prefixed merge changed receiver")
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram()
	h.Record(sim.Microsecond)
	if h.String() == "" {
		t.Fatal("empty string")
	}
}

func TestCountersSum(t *testing.T) {
	c := NewCounters()
	c.Add("a", 3)
	c.Add("b", 5)
	if got := c.Sum("a", "b", "missing"); got != 8 {
		t.Fatalf("Sum = %d, want 8 (missing names count zero)", got)
	}
	if got := c.Sum(); got != 0 {
		t.Fatalf("empty Sum = %d, want 0", got)
	}
}
