package metrics

import (
	"testing"

	"nvdimmc/internal/sim"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Record(sim.Duration(i) * sim.Microsecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != sim.Microsecond || h.Max() != 100*sim.Microsecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	mean := h.Mean()
	if mean < 50*sim.Microsecond || mean > 51*sim.Microsecond {
		t.Fatalf("mean = %v, want ~50.5us", mean)
	}
	p50 := h.Percentile(50)
	if p50 < 45*sim.Microsecond || p50 > 56*sim.Microsecond {
		t.Fatalf("p50 = %v", p50)
	}
	if h.Percentile(100) != h.Max() {
		t.Fatalf("p100 = %v != max %v", h.Percentile(100), h.Max())
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Mean() != 0 || h.Min() != 0 || h.Percentile(99) != 0 {
		t.Fatal("empty histogram not zeroed")
	}
}

func TestHistogramReservoirBounded(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 100000; i++ {
		h.Record(sim.Duration(i))
	}
	if len(h.samples) > reservoirSize {
		t.Fatalf("reservoir grew to %d", len(h.samples))
	}
	if h.Count() != 100000 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestMeter(t *testing.T) {
	m := NewMeter(0)
	m.Record(sim.Time(sim.Millisecond), 4096)
	m.Record(sim.Time(2*sim.Millisecond), 4096)
	if m.Ops() != 2 || m.Bytes() != 8192 {
		t.Fatalf("ops/bytes = %d/%d", m.Ops(), m.Bytes())
	}
	// 8192 B over 2 ms = 4.096 MB/s.
	if bw := m.BandwidthMBps(); bw < 4.0 || bw > 4.2 {
		t.Fatalf("bandwidth = %v", bw)
	}
	if iops := m.IOPS(); iops < 999 || iops > 1001 {
		t.Fatalf("IOPS = %v", iops)
	}
	if m.KIOPS() != m.IOPS()/1000 {
		t.Fatal("KIOPS mismatch")
	}
}

func TestMeterFinishExtends(t *testing.T) {
	m := NewMeter(0)
	m.Record(sim.Time(sim.Millisecond), 1000)
	m.Finish(sim.Time(2 * sim.Millisecond))
	if m.Elapsed() != 2*sim.Millisecond {
		t.Fatalf("elapsed = %v", m.Elapsed())
	}
}

func TestMeterEmpty(t *testing.T) {
	m := NewMeter(0)
	if m.IOPS() != 0 || m.BandwidthMBps() != 0 {
		t.Fatal("empty meter reports throughput")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Add(0.1, 10)
	s.Add(0.2, 30)
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.Mean() != 20 {
		t.Fatalf("mean = %v", s.Mean())
	}
	var empty Series
	if empty.Mean() != 0 {
		t.Fatal("empty series mean")
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram()
	h.Record(sim.Microsecond)
	if h.String() == "" {
		t.Fatal("empty string")
	}
}
