// Package metrics provides the measurement plumbing the benchmark harnesses
// share: latency histograms with percentile queries, bandwidth/IOPS meters
// over simulated time, and simple time series for the Fig. 7-style
// bandwidth-over-progress plots.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"nvdimmc/internal/sim"
)

// Histogram records latencies with log-spaced buckets plus exact min/max and
// a bounded reservoir for percentile estimation. Like every type in this
// package it is shard-local: one instance per sim instance, merged (if at
// all) by the experiment layer after its shards join.
type Histogram struct {
	count   uint64
	sum     sim.Duration
	min     sim.Duration
	max     sim.Duration
	samples []sim.Duration // reservoir
	seen    uint64
	rng     uint64
	// sorted caches the ascending reservoir between Records so repeated
	// Percentile queries (String alone makes two) cost one sort per batch of
	// observations instead of one per call.
	sorted []sim.Duration
	dirty  bool
}

// reservoirSize bounds per-histogram memory.
const reservoirSize = 4096

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{min: math.MaxInt64, rng: 0x1234ABCD}
}

// Record adds one latency observation.
func (h *Histogram) Record(d sim.Duration) {
	h.count++
	h.sum += d
	if d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.seen++
	if len(h.samples) < reservoirSize {
		h.samples = append(h.samples, d)
		h.dirty = true
		return
	}
	// Vitter's algorithm R.
	h.rng ^= h.rng << 13
	h.rng ^= h.rng >> 7
	h.rng ^= h.rng << 17
	if idx := h.rng % h.seen; idx < uint64(len(h.samples)) {
		h.samples[idx] = d
		h.dirty = true
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the average latency (0 if empty).
func (h *Histogram) Mean() sim.Duration {
	if h.count == 0 {
		return 0
	}
	return sim.Duration(int64(h.sum) / int64(h.count))
}

// Min and Max return the extremes (0 if empty).
func (h *Histogram) Min() sim.Duration {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the maximum observation.
func (h *Histogram) Max() sim.Duration { return h.max }

// sortedSamples returns the reservoir in ascending order, re-sorting only
// when observations arrived since the last query.
func (h *Histogram) sortedSamples() []sim.Duration {
	if h.dirty || len(h.sorted) != len(h.samples) {
		h.sorted = append(h.sorted[:0], h.samples...)
		sort.Slice(h.sorted, func(i, j int) bool { return h.sorted[i] < h.sorted[j] })
		h.dirty = false
	}
	return h.sorted
}

// Percentile returns the p-th percentile (0 <= p <= 100) from the reservoir,
// linearly interpolating between neighbouring ranks. The former truncating
// nearest-rank index systematically biased tail percentiles (p99, p999) low
// whenever the exact rank fell between two samples.
func (h *Histogram) Percentile(p float64) sim.Duration {
	s := h.sortedSamples()
	if len(s) == 0 {
		return 0
	}
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(rank)
	if lo >= len(s)-1 {
		return s[len(s)-1]
	}
	frac := rank - float64(lo)
	return s[lo] + sim.Duration(math.Round(frac*float64(s[lo+1]-s[lo])))
}

func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.count, h.Mean(), h.Percentile(50), h.Percentile(99), h.Max())
}

// Merge folds o's observations into h without re-recording samples: count,
// sum and extremes combine exactly; the percentile reservoirs combine by
// proportional subsampling. Each reservoir is already a uniform sample of its
// stream, and any fixed-stride subset of a uniform sample is itself uniform,
// so the merged reservoir holds round(R * seen_h/total) strided picks from h
// and the rest from o — deterministic (no RNG draw), which the parallel pool
// harness relies on for byte-identical output at any worker count. o is not
// modified.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.count == 0 {
		return
	}
	if h.count == 0 {
		h.count, h.sum, h.min, h.max = o.count, o.sum, o.min, o.max
		h.seen = o.seen
		h.samples = append(h.samples[:0], o.samples...)
		h.dirty = true
		return
	}
	h.count += o.count
	h.sum += o.sum
	if o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	total := h.seen + o.seen
	if len(h.samples)+len(o.samples) <= reservoirSize {
		h.samples = append(h.samples, o.samples...)
	} else {
		nh := int(float64(reservoirSize)*float64(h.seen)/float64(total) + 0.5)
		if nh > len(h.samples) {
			nh = len(h.samples)
		}
		no := reservoirSize - nh
		if no > len(o.samples) {
			no = len(o.samples)
			nh = reservoirSize - no
		}
		merged := make([]sim.Duration, 0, nh+no)
		merged = append(merged, stride(h.samples, nh)...)
		merged = append(merged, stride(o.samples, no)...)
		h.samples = merged
	}
	h.seen = total
	h.dirty = true
}

// stride returns n elements of s at evenly spaced positions (all of s when
// n >= len(s)).
func stride(s []sim.Duration, n int) []sim.Duration {
	if n >= len(s) {
		return s
	}
	if n <= 0 {
		return nil
	}
	out := make([]sim.Duration, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, s[i*len(s)/n])
	}
	return out
}

// Meter accumulates operation and byte counts over a simulated interval and
// reports IOPS and bandwidth.
type Meter struct {
	start sim.Time
	end   sim.Time
	ops   uint64
	bytes uint64
}

// NewMeter starts measuring at now.
func NewMeter(now sim.Time) *Meter { return &Meter{start: now, end: now} }

// Record adds one completed operation of n bytes at time now.
func (m *Meter) Record(now sim.Time, n int) {
	m.ops++
	m.bytes += uint64(n)
	if now > m.end {
		m.end = now
	}
}

// Finish pins the measurement end (defaults to the last recorded op).
func (m *Meter) Finish(now sim.Time) {
	if now > m.end {
		m.end = now
	}
}

// Elapsed returns the measured interval.
func (m *Meter) Elapsed() sim.Duration { return m.end.Sub(m.start) }

// Ops returns completed operations.
func (m *Meter) Ops() uint64 { return m.ops }

// Bytes returns total bytes moved.
func (m *Meter) Bytes() uint64 { return m.bytes }

// IOPS returns operations per simulated second.
func (m *Meter) IOPS() float64 {
	e := m.Elapsed().Seconds()
	if e <= 0 {
		return 0
	}
	return float64(m.ops) / e
}

// KIOPS returns thousands of operations per second.
func (m *Meter) KIOPS() float64 { return m.IOPS() / 1e3 }

// BandwidthMBps returns bandwidth in decimal megabytes per second (the
// paper's unit).
func (m *Meter) BandwidthMBps() float64 {
	e := m.Elapsed().Seconds()
	if e <= 0 {
		return 0
	}
	return float64(m.bytes) / 1e6 / e
}

// Merge folds o's interval and totals into m: the merged span is
// [min(start), max(end)] — NOT the sum of elapsed times, which would
// double-count overlap when per-channel meters measured concurrently — and
// ops/bytes add. An empty meter (no recorded op and zero span) contributes
// nothing, so merging a never-used channel does not drag start to its boot
// instant. o is not modified.
func (m *Meter) Merge(o *Meter) {
	if o == nil || (o.ops == 0 && o.bytes == 0 && o.start == o.end) {
		return
	}
	if m.ops == 0 && m.bytes == 0 && m.start == m.end {
		*m = *o
		return
	}
	if o.start < m.start {
		m.start = o.start
	}
	if o.end > m.end {
		m.end = o.end
	}
	m.ops += o.ops
	m.bytes += o.bytes
}

// Series is a (x, value) sequence for bandwidth-over-progress plots.
type Series struct {
	Name   string
	X      []float64
	Values []float64
}

// Add appends one point.
func (s *Series) Add(x, v float64) {
	s.X = append(s.X, x)
	s.Values = append(s.Values, v)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Values) }

// Mean returns the average of the values (0 if empty).
func (s *Series) Mean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// Counters is a named-counter set for error/retry/degradation accounting:
// the driver and device models count every fault-handling transition here so
// tests (and core.CheckHealth) can assert exactly which recovery paths ran.
// Names are registered implicitly on first use; iteration is sorted so output
// is deterministic. Sorting happens lazily in Names/String — registration is
// O(1) — and a Counters is shard-local under the parallel experiment
// harness: each sharded sim instance owns its set, never shared across
// goroutines, and the merge step reads them only after the shard joins.
type Counters struct {
	names  []string
	sorted bool
	m      map[string]uint64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{m: make(map[string]uint64)}
}

// Inc adds one to the named counter.
func (c *Counters) Inc(name string) { c.Add(name, 1) }

// Add adds n to the named counter. First-use registration is O(1): the name
// list is sorted lazily on read (the old eager re-sort per registration was
// O(n^2 log n) across a run).
func (c *Counters) Add(name string, n uint64) {
	if _, ok := c.m[name]; !ok {
		c.names = append(c.names, name)
		c.sorted = false
	}
	c.m[name] += n
}

// Get returns the named counter's value (0 if never touched).
func (c *Counters) Get(name string) uint64 { return c.m[name] }

// sortNames establishes the sorted order readers rely on.
func (c *Counters) sortNames() {
	if !c.sorted {
		sort.Strings(c.names)
		c.sorted = true
	}
}

// Names returns the registered counter names in sorted order.
func (c *Counters) Names() []string {
	c.sortNames()
	out := make([]string, len(c.names))
	copy(out, c.names)
	return out
}

// Snapshot returns a copy of all counters.
func (c *Counters) Snapshot() map[string]uint64 {
	out := make(map[string]uint64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// Merge adds every counter in o into c (registering names as needed). o's
// sorted-name order drives iteration, so registration order in c — and with
// it String/Names output — is independent of map iteration. o is not
// modified beyond the lazy sort of its name list.
func (c *Counters) Merge(o *Counters) {
	if o == nil {
		return
	}
	o.sortNames()
	for _, n := range o.names {
		c.Add(n, o.m[n])
	}
}

// MergePrefixed folds o's counters into c under prefix+name, in o's sorted
// name order (deterministic like Merge). The NUMA fabric uses it to keep N
// sockets' pool counters distinguishable in one flat table ("s0/retry-ok",
// "s1/retry-ok") without inventing a nested counter type.
func (c *Counters) MergePrefixed(prefix string, o *Counters) {
	if o == nil {
		return
	}
	o.sortNames()
	for _, n := range o.names {
		c.Add(prefix+n, o.m[n])
	}
}

// Sum returns the total of the named counters (names never touched count
// zero). Health probes use it to fold a family of error counters into one
// rate-comparable figure.
func (c *Counters) Sum(names ...string) uint64 {
	var t uint64
	for _, n := range names {
		t += c.m[n]
	}
	return t
}

// NonZero reports whether any of the given counters is nonzero, returning
// the first offender's name and value.
func (c *Counters) NonZero(names ...string) (string, uint64, bool) {
	for _, n := range names {
		if v := c.m[n]; v != 0 {
			return n, v, true
		}
	}
	return "", 0, false
}

func (c *Counters) String() string {
	if len(c.names) == 0 {
		return "{}"
	}
	c.sortNames()
	parts := make([]string, 0, len(c.names))
	for _, n := range c.names {
		parts = append(parts, fmt.Sprintf("%s=%d", n, c.m[n]))
	}
	return "{" + joinStrings(parts, " ") + "}"
}

// joinStrings avoids importing strings for one call site.
func joinStrings(parts []string, sep string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += sep
		}
		out += p
	}
	return out
}
