package nvdimmc

// One testing.B benchmark per table and figure of the paper's evaluation.
// Each iteration regenerates the experiment on the simulated system and
// reports the headline metrics via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. Paper-vs-measured context is printed by
// the underlying harnesses (see cmd/nvdimmc-bench for the verbose form) and
// recorded in EXPERIMENTS.md.

import (
	"runtime"
	"testing"

	"nvdimmc/internal/experiments"
)

func quick() experiments.Options { return experiments.Options{Quick: true} }

func quickParallel() experiments.Options {
	return experiments.Options{Quick: true, Parallel: runtime.GOMAXPROCS(0)}
}

func BenchmarkTable1Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table1(quick())
		experiments.Table2(quick())
	}
}

func BenchmarkAgingStream(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Aging(quick())
		if err != nil {
			b.Fatal(err)
		}
		if res.Inconsistencies != 0 || res.Collisions != 0 {
			b.Fatalf("aging not clean: %+v", res)
		}
		b.ReportMetric(float64(res.WindowsSeen), "windows")
	}
}

func BenchmarkFig7FileCopy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(quick())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.CachedMBps, "cached-MB/s")
		b.ReportMetric(res.UncachedMBps, "uncached-MB/s")
	}
}

func BenchmarkFig8Random4K(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(quick())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Get("baseline-read bandwidth"), "base-MB/s")
		b.ReportMetric(res.Get("cached-read bandwidth"), "cached-MB/s")
		b.ReportMetric(res.Get("uncached-read bandwidth"), "uncached-MB/s")
	}
}

func BenchmarkFig9Threads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(quick())
		if err != nil {
			b.Fatal(err)
		}
		_, basePeak := res.Peak("baseline-read")
		_, cachedPeak := res.Peak("cached-read")
		b.ReportMetric(basePeak, "base-peak-MB/s")
		b.ReportMetric(cachedPeak, "cached-peak-MB/s")
	}
}

func BenchmarkFig10Granularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(quick())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.At("cached-read", 128).KIOPS, "cached-128B-KIOPS")
		b.ReportMetric(res.At("cached-read", 65536).MBps, "cached-64K-MB/s")
	}
}

func BenchmarkFig11TPCH(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11(quick())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Slowdown[0], "Q1-slowdown-x")
		b.ReportMetric(res.Slowdown[len(res.Slowdown)-1], "Q20-slowdown-x")
	}
}

func BenchmarkMixedLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.MixedLoad(quick())
		if err != nil {
			b.Fatal(err)
		}
		if res.ValidationFailures != 0 {
			b.Fatalf("%d validation failures", res.ValidationFailures)
		}
		b.ReportMetric(float64(res.Transactions), "txns")
	}
}

func BenchmarkLRUStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.LRUStudy(quick())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.LRU[0], "LRU-1GB-%")
		b.ReportMetric(100*res.LRU[len(res.LRU)-1], "LRU-16GB-%")
	}
}

func BenchmarkFig12Hypothetical(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig12(quick())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[len(res.Rows)-1].Measured, "tD1.85us-MB/s")
	}
}

func BenchmarkFig13HostDRAM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig13(quick())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].Measured, "tREFI-MB/s")
		b.ReportMetric(res.Rows[2].Measured, "tREFI4-MB/s")
	}
}

func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Ablations(quick())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].Measured, "PoC-MB/s")
		b.ReportMetric(res.Rows[4].Measured, "optimized-MB/s")
	}
}

func BenchmarkFrontendAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.FrontendAnalysis(quick())
		b.ReportMetric(res.Budget.Nanoseconds(), "budget-ns")
	}
}

func BenchmarkWindowBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Windows(quick())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeasuredPairUS, "pair-us")
	}
}

// The pair below is the harness's own speedup benchmark: the same quick
// crash sweep serial vs sharded across GOMAXPROCS workers. The sweep's
// per-point results are seed-derived, so both report identical audits.
func BenchmarkCrashSweepSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.CrashSweep(quick())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Failures) != 0 {
			b.Fatalf("%d acked writes lost", len(res.Failures))
		}
	}
}

func BenchmarkCrashSweepParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.CrashSweep(quickParallel())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Failures) != 0 {
			b.Fatalf("%d acked writes lost", len(res.Failures))
		}
	}
}

func BenchmarkFig9ThreadsParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(quickParallel())
		if err != nil {
			b.Fatal(err)
		}
		_, cachedPeak := res.Peak("cached-read")
		b.ReportMetric(cachedPeak, "cached-peak-MB/s")
	}
}
